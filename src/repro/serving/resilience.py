"""Self-healing primitives for the serving tier.

PR 6's tier *contains* faults (a dead worker takes only its own arc, its
in-flight requests fail retriably) but never *repairs* them: the fleet only
shrinks, and "retriable" is an adjective the client has to act on by hand.
This module closes that loop with the same shape of argument the paper makes
for iterative refinement — a cheap outer loop that repairs imperfect inner
results:

* :class:`RetryPolicy` — client-side exponential backoff with decorrelated
  jitter (the AWS formula: ``sleep = min(cap, uniform(base, prev * 3))``),
  honouring the server-provided ``retry_after`` on admission rejections and
  bounding retries on :class:`~repro.exceptions.WorkerUnavailableError`.
  The RNG and the sleep function are injectable, so tests replay schedules
  deterministically and never actually sleep.
* :class:`CircuitBreaker` — per-worker failure isolation.  ``closed`` routes
  normally; ``failure_threshold`` *consecutive* failures trip it ``open``
  (requests shed instantly with a ``retry_after`` instead of queueing onto a
  doomed worker); after ``reset_timeout`` it goes ``half-open`` and admits
  one probe — success closes it, failure re-opens it for another window.
* :class:`ChaosSpec` / :class:`ChaosPolicy` — a deterministic
  fault-injection harness.  A seeded RNG (derived per worker *and* per
  incarnation, so a respawned worker replays a fresh but reproducible
  stream) scripts worker crashes, hangs, slow responses, queue stalls and
  corrupted store payloads.  The policy is injected into
  :func:`~repro.serving.worker.worker_main` via
  :class:`~repro.serving.worker.WorkerConfig` or the ``REPRO_CHAOS``
  environment variable (JSON), and costs **zero** overhead when disabled —
  the worker holds ``None`` and never calls in.
* :class:`Supervisor` — the respawn loop of
  :class:`~repro.serving.frontend.ClusterEngine`.  It watches for worker
  death (reaper signal) and heartbeat staleness (a worker with queued work
  that has gone silent is probed; a probe timeout means *hung*, and a hung
  worker is killed so the death path can heal it), then respawns the
  process under exponential backoff and re-adds it to the hash ring —
  the fleet re-converges to full capacity instead of shrinking forever.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import threading
import time
from dataclasses import dataclass, field

from ..exceptions import (
    AdmissionError,
    CircuitOpenError,
    QueueFullError,
    QuotaExceededError,
    WorkerUnavailableError,
)
from ..obs.trace import current_trace

__all__ = ["RetryPolicy", "CircuitBreaker", "ChaosSpec", "ChaosPolicy",
           "Supervisor", "CHAOS_ENV_VAR"]

#: environment variable carrying a JSON :class:`ChaosSpec` for worker
#: processes (the config field takes precedence when both are set).
CHAOS_ENV_VAR = "REPRO_CHAOS"


# ---------------------------------------------------------------------- #
# retry policy
# ---------------------------------------------------------------------- #
class RetryPolicy:
    """Bounded retries with exponential backoff and decorrelated jitter.

    Parameters
    ----------
    max_attempts:
        Total tries (the first attempt counts; ``max_attempts=4`` means up
        to three retries).
    base_delay / max_delay:
        Backoff bounds in seconds.  The decorrelated-jitter recurrence is
        ``delay = min(max_delay, uniform(base_delay, previous * 3))`` with
        ``previous`` starting at ``base_delay``; it spreads a thundering
        herd across the window far better than full jitter on a pure
        exponential.
    retry_admission:
        Retry :class:`~repro.exceptions.QuotaExceededError` /
        :class:`~repro.exceptions.QueueFullError` (honouring their
        ``retry_after`` as a floor on the delay).  Off by default policy
        consumers that want shedding to stay visible can disable it.
    retry_unavailable:
        Retry :class:`~repro.exceptions.WorkerUnavailableError` (including
        :class:`~repro.exceptions.CircuitOpenError`) — the fault the
        supervisor repairs in the background, so a short backoff usually
        lands on a healed fleet.
    rng:
        Seed or ``random.Random`` for the jitter draws; pass a seed for a
        reproducible schedule.
    sleep:
        Injectable sleep callable (tests pass a recorder).

    Examples
    --------
    >>> policy = RetryPolicy(max_attempts=4, rng=0, sleep=lambda s: None)
    >>> policy.execute(flaky_callable)           # retried up to 3 times
    """

    def __init__(self, *, max_attempts: int = 4, base_delay: float = 0.05,
                 max_delay: float = 2.0, retry_admission: bool = True,
                 retry_unavailable: bool = True, rng=None,
                 sleep=time.sleep) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay <= 0.0 or max_delay < base_delay:
            raise ValueError("need 0 < base_delay <= max_delay")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.retry_admission = bool(retry_admission)
        self.retry_unavailable = bool(retry_unavailable)
        self._rng = rng if isinstance(rng, random.Random) else random.Random(rng)
        self.sleep = sleep
        self._lock = threading.Lock()
        self._retries = 0

    # ------------------------------------------------------------------ #
    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether ``error`` on 0-based ``attempt`` warrants another try."""
        if attempt + 1 >= self.max_attempts:
            return False
        if not getattr(error, "retriable", False):
            return False
        if isinstance(error, (QuotaExceededError, QueueFullError)):
            return self.retry_admission
        if isinstance(error, WorkerUnavailableError):
            return self.retry_unavailable
        return isinstance(error, AdmissionError)

    def next_delay(self, previous: float | None = None, *,
                   retry_after: float | None = None) -> float:
        """Decorrelated-jitter successor of ``previous`` (``None`` = first).

        A server-provided ``retry_after`` floors the delay — backing off
        *less* than the server asked for just converts one rejection into
        two.
        """
        with self._lock:
            anchor = self.base_delay if previous is None else previous
            delay = self._rng.uniform(self.base_delay,
                                      max(self.base_delay, anchor * 3.0))
        delay = min(self.max_delay, delay)
        if retry_after is not None:
            delay = max(delay, float(retry_after))
        return delay

    def execute(self, fn, *args, **kwargs):
        """Call ``fn`` under this policy; re-raises the final failure."""
        delay = None
        for attempt in range(self.max_attempts):
            try:
                return fn(*args, **kwargs)
            except AdmissionError as exc:
                if not self.should_retry(exc, attempt):
                    raise
                delay = self.next_delay(delay, retry_after=exc.retry_after)
                with self._lock:
                    self._retries += 1
                self.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def stats(self) -> dict:
        with self._lock:
            return {"max_attempts": self.max_attempts,
                    "base_delay": self.base_delay,
                    "max_delay": self.max_delay,
                    "retries": self._retries}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RetryPolicy(max_attempts={self.max_attempts}, "
                f"base_delay={self.base_delay}, max_delay={self.max_delay})")


# ---------------------------------------------------------------------- #
# circuit breaker
# ---------------------------------------------------------------------- #
class CircuitBreaker:
    """Per-worker trip switch: fail fast instead of queueing onto the doomed.

    States: ``closed`` (normal), ``open`` (shedding), ``half-open`` (one
    probe allowed).  ``failure_threshold`` *consecutive* failures trip the
    breaker; after ``reset_timeout`` seconds the next :meth:`allow` admits a
    single probe — a success closes the breaker, a failure re-opens it for
    another full window.  ``clock`` is injectable for deterministic tests.
    Thread-safe.
    """

    def __init__(self, *, failure_threshold: int = 3,
                 reset_timeout: float = 1.0, clock=time.monotonic,
                 listener=None) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0.0:
            raise ValueError("reset_timeout must be > 0")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        #: optional ``listener(transition, **fields)`` called (outside the
        #: lock) on open / half_open / reopen / close — the hook the serving
        #: tier uses to put breaker state changes on the event log.
        self.listener = listener
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probing = False
        self._trips = 0

    def _notify(self, transition: str, **fields) -> None:
        if self.listener is None:
            return
        try:
            self.listener(transition, **fields)
        except Exception:  # noqa: BLE001 - telemetry must not break routing
            pass

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked(float(self._clock()))

    def _state_locked(self, now: float) -> str:
        if self._opened_at is None:
            return "closed"
        if self._probing or now - self._opened_at >= self.reset_timeout:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """May a request pass right now?  (Claims the half-open probe slot.)"""
        now = float(self._clock())
        probing = False
        with self._lock:
            state = self._state_locked(now)
            if state == "closed":
                return True
            if state == "half-open" and not self._probing:
                self._probing = True
                probing = True
        if probing:
            self._notify("half_open")
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the breaker will next admit a probe (0 = now)."""
        now = float(self._clock())
        with self._lock:
            if self._opened_at is None:
                return 0.0
            return max(0.0, self.reset_timeout - (now - self._opened_at))

    def record_success(self) -> None:
        """A request attributed to this worker completed normally."""
        with self._lock:
            closed = self._opened_at is not None
            self._consecutive_failures = 0
            self._opened_at = None
            self._probing = False
        if closed:
            self._notify("close")

    def record_failure(self) -> None:
        """An infrastructure failure attributed to this worker."""
        now = float(self._clock())
        transition = None
        with self._lock:
            self._consecutive_failures += 1
            if self._probing:
                # the half-open probe failed: re-open for a fresh window.
                self._probing = False
                self._opened_at = now
                transition = "reopen"
            elif (self._opened_at is None
                  and self._consecutive_failures >= self.failure_threshold):
                self._opened_at = now
                self._trips += 1
                transition = "open"
        if transition is not None:
            self._notify(transition,
                         consecutive_failures=self._consecutive_failures,
                         trips=self._trips)

    def stats(self) -> dict:
        with self._lock:
            return {"state": self._state_locked(float(self._clock())),
                    "consecutive_failures": self._consecutive_failures,
                    "trips": self._trips,
                    "failure_threshold": self.failure_threshold,
                    "reset_timeout": self.reset_timeout}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitBreaker(state={self.state!r}, trips={self._trips})"


# ---------------------------------------------------------------------- #
# deterministic chaos injection
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ChaosSpec:
    """Picklable, JSON-able script of faults for :class:`ChaosPolicy`.

    All probabilities are per-request (``stall_rate`` per queue drain,
    ``corrupt_store_rate`` per store write); ``crash_points`` is an explicit
    deterministic schedule of ``(incarnation, request_index)`` pairs — e.g.
    ``((0, 2),)`` crashes the worker's first incarnation while it handles
    its third request, and leaves every respawned incarnation healthy.
    ``workers`` restricts the spec to specific worker ids (empty = all).
    The default spec injects nothing and reports ``enabled == False``.
    """

    seed: int = 0
    crash_points: tuple = ()
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    hang_seconds: float = 3600.0
    slow_rate: float = 0.0
    slow_seconds: float = 0.05
    stall_rate: float = 0.0
    stall_seconds: float = 0.05
    corrupt_store_rate: float = 0.0
    workers: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "crash_points",
                           tuple((int(inc), int(idx))
                                 for inc, idx in self.crash_points))
        object.__setattr__(self, "workers",
                           tuple(str(w) for w in self.workers))

    @property
    def enabled(self) -> bool:
        return bool(self.crash_points) or any(
            rate > 0.0 for rate in (self.crash_rate, self.hang_rate,
                                    self.slow_rate, self.stall_rate,
                                    self.corrupt_store_rate))

    @classmethod
    def from_dict(cls, spec: dict) -> "ChaosSpec":
        known = {name for name in cls.__dataclass_fields__}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(f"unknown ChaosSpec field(s): {sorted(unknown)}")
        return cls(**spec)

    def to_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "crash_points": [list(point) for point in self.crash_points],
            "crash_rate": self.crash_rate,
            "hang_rate": self.hang_rate,
            "hang_seconds": self.hang_seconds,
            "slow_rate": self.slow_rate,
            "slow_seconds": self.slow_seconds,
            "stall_rate": self.stall_rate,
            "stall_seconds": self.stall_seconds,
            "corrupt_store_rate": self.corrupt_store_rate,
            "workers": list(self.workers),
        })


def _derive_rng(spec_seed: int, worker_id: str, incarnation: int,
                stream: str) -> random.Random:
    """Independent deterministic stream per (seed, worker, incarnation, use)."""
    token = f"{spec_seed}:{worker_id}:{incarnation}:{stream}"
    digest = hashlib.sha256(token.encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class ChaosPolicy:
    """Deterministic fault decisions for one worker incarnation.

    Each fault channel (request actions, drain stalls, store corruption)
    draws from its **own** seeded stream, so e.g. enabling store corruption
    never shifts the crash schedule.  Given the same spec, worker id,
    incarnation and request order, every decision replays identically —
    which is what makes recovery paths *testable*.

    The serving tier never pays for a disabled policy:
    :meth:`resolve` returns ``None`` (not an inert object) when the spec
    injects nothing, and callers hold ``if chaos is not None`` guards.
    """

    def __init__(self, spec: ChaosSpec | dict, *, worker_id: str = "",
                 incarnation: int = 0) -> None:
        self.spec = (spec if isinstance(spec, ChaosSpec)
                     else ChaosSpec.from_dict(spec))
        self.worker_id = str(worker_id)
        self.incarnation = int(incarnation)
        self._applies = (not self.spec.workers
                         or self.worker_id in self.spec.workers)
        self._crash_at = {idx for inc, idx in self.spec.crash_points
                          if inc == self.incarnation}
        #: optional :class:`repro.obs.events.EventLog`; every injected fault
        #: is recorded on it (and fsynced before a crash) so chaos drills
        #: leave an auditable timeline.  Set by the worker after resolve().
        self.events = None
        seed = self.spec.seed
        self._request_rng = _derive_rng(seed, self.worker_id,
                                        self.incarnation, "request")
        self._drain_rng = _derive_rng(seed, self.worker_id,
                                      self.incarnation, "drain")
        self._store_rng = _derive_rng(seed, self.worker_id,
                                      self.incarnation, "store")

    @property
    def enabled(self) -> bool:
        return self._applies and self.spec.enabled

    @classmethod
    def resolve(cls, spec, *, worker_id: str = "", incarnation: int = 0,
                environ=os.environ) -> "ChaosPolicy | None":
        """Active policy from a config spec or ``REPRO_CHAOS``; else ``None``."""
        if spec is None:
            raw = environ.get(CHAOS_ENV_VAR)
            if not raw:
                return None
            spec = ChaosSpec.from_dict(json.loads(raw))
        policy = cls(spec, worker_id=worker_id, incarnation=incarnation)
        return policy if policy.enabled else None

    # ------------------------------------------------------------------ #
    def on_request(self, index: int) -> str | None:
        """Fault for the ``index``-th request this incarnation handles.

        Returns ``"crash"`` / ``"hang"`` / ``"slow"`` / ``None``.  The
        random draw happens on **every** request (even when a crash point
        preempts it), keeping later decisions independent of the schedule.
        """
        spec = self.spec
        draw = self._request_rng.random()
        if index in self._crash_at or draw < spec.crash_rate:
            self._record_fault("crash", request_index=index,
                               scheduled=index in self._crash_at)
            return "crash"
        if draw < spec.crash_rate + spec.hang_rate:
            self._record_fault("hang", request_index=index,
                               seconds=spec.hang_seconds)
            return "hang"
        if draw < spec.crash_rate + spec.hang_rate + spec.slow_rate:
            self._record_fault("slow", request_index=index,
                               seconds=spec.slow_seconds)
            return "slow"
        return None

    def on_drain(self) -> float:
        """Queue-stall duration to inject before this drain pass (0 = none)."""
        if self.spec.stall_rate <= 0.0:
            return 0.0
        if self._drain_rng.random() < self.spec.stall_rate:
            self._record_fault("stall", seconds=self.spec.stall_seconds)
            return self.spec.stall_seconds
        return 0.0

    def corrupt_payload(self, data: bytes) -> bytes | None:
        """Corrupted replacement for a store payload, or ``None`` = intact.

        Corruption truncates the archive and appends garbage — exactly the
        torn-write / bad-sector shape the store's quarantine path handles.
        """
        if self.spec.corrupt_store_rate <= 0.0:
            return None
        if self._store_rng.random() >= self.spec.corrupt_store_rate:
            return None
        self._record_fault("corrupt_store", size=len(data))
        return data[: max(1, len(data) // 2)] + b"\x00chaos"

    def _record_fault(self, fault: str, **fields) -> None:
        """Stamp an injected fault on the event log (no-op without a sink).

        Crash faults are fsynced before returning: the very next thing the
        worker does is ``os._exit``, which would otherwise lose the line.
        """
        if self.events is None:
            return
        trace = current_trace()
        self.events.emit("chaos_fault", fault=fault,
                         trace_id=None if trace is None else trace.trace_id,
                         worker=self.worker_id,
                         incarnation=self.incarnation, **fields)
        if fault == "crash":
            self.events.sync()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ChaosPolicy(worker={self.worker_id!r}, "
                f"incarnation={self.incarnation}, enabled={self.enabled})")


# ---------------------------------------------------------------------- #
# supervisor
# ---------------------------------------------------------------------- #
class Supervisor:
    """Respawn loop: watch the fleet, heal deaths, unstick hangs.

    Owned by :class:`~repro.serving.frontend.ClusterEngine` (which passes
    itself in); the engine provides the mechanics (``_reap_dead_workers``,
    ``_respawn_worker``, ``_probe_worker``) and the supervisor provides the
    policy:

    * **death** — a worker process that is no longer alive is reaped (ring
      shrink + orphan redispatch) and then respawned under exponential
      backoff (``backoff_base`` doubling up to ``backoff_cap`` per
      consecutive short-lived incarnation; an incarnation that survives
      ``stable_after`` seconds resets the schedule), so a crash-looping
      worker cannot turn the supervisor into a fork bomb;
    * **hang** — a worker with queued work whose last response (its
      heartbeat) is older than ``hang_timeout`` is sent a stats probe with
      a short deadline.  Silence means the event loop is wedged — the
      process is terminated, which converts the hang into a death the next
      pass heals.  ``hang_timeout=None`` disables hang detection.
    """

    def __init__(self, engine, *, interval: float = 0.2,
                 hang_timeout: float | None = 10.0,
                 probe_timeout: float = 2.0, backoff_base: float = 0.05,
                 backoff_cap: float = 2.0, stable_after: float = 5.0,
                 max_restarts: int | None = None) -> None:
        if interval <= 0.0:
            raise ValueError("interval must be > 0")
        self._engine = engine
        self.interval = float(interval)
        self.hang_timeout = None if hang_timeout is None else float(hang_timeout)
        self.probe_timeout = float(probe_timeout)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.stable_after = float(stable_after)
        self.max_restarts = max_restarts
        self._lock = threading.Lock()
        #: worker_id -> (consecutive short-lived incarnations, next allowed at)
        self._backoff: dict[str, tuple[int, float]] = {}
        self._respawns = 0
        self._hang_kills = 0
        self._exhausted: set[str] = set()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serving-supervisor",
                                        daemon=True)

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        self._thread.start()

    def join(self, timeout: float | None = None) -> None:
        if self._thread.is_alive():
            self._thread.join(timeout)

    def _run(self) -> None:
        closing = self._engine._closing
        while not closing.wait(self.interval):
            try:
                self.tick()
            except Exception:  # noqa: BLE001 - supervision must outlive bugs
                pass

    # ------------------------------------------------------------------ #
    def tick(self) -> None:
        """One supervision pass (public so tests can drive it directly)."""
        engine = self._engine
        now = time.monotonic()
        for worker_id in list(engine._workers):
            if engine._closing.is_set():
                return
            info = engine._workers[worker_id]
            process = info["process"]
            if not process.is_alive():
                engine._reap_dead_workers()
                self._maybe_respawn(worker_id, info, now)
            elif (self.hang_timeout is not None
                  and engine._depth.get(worker_id, 0) > 0
                  and now - engine._last_heard.get(worker_id, now)
                  > self.hang_timeout):
                if not engine._probe_worker(worker_id,
                                            timeout=self.probe_timeout):
                    with self._lock:
                        self._hang_kills += 1
                    emit = getattr(engine, "_event", None)
                    if emit is not None:
                        emit("worker_hang_kill", worker=worker_id,
                             silent_s=now - engine._last_heard.get(worker_id,
                                                                   now))
                    process.terminate()  # next pass heals it as a death

    def _maybe_respawn(self, worker_id: str, info: dict, now: float) -> None:
        restarts = self._engine._restarts.get(worker_id, 0)
        if self.max_restarts is not None and restarts >= self.max_restarts:
            with self._lock:
                self._exhausted.add(worker_id)
            return
        with self._lock:
            consecutive, not_before = self._backoff.get(worker_id, (0, 0.0))
            if now < not_before:
                return
            lifetime = now - info.get("started_at", now)
            consecutive = 0 if lifetime >= self.stable_after else consecutive + 1
            delay = min(self.backoff_cap,
                        self.backoff_base * (2.0 ** max(0, consecutive - 1)))
            self._backoff[worker_id] = (consecutive, now + delay)
        self._engine._respawn_worker(worker_id)
        with self._lock:
            self._respawns += 1

    def stats(self) -> dict:
        with self._lock:
            return {"respawns": self._respawns,
                    "hang_kills": self._hang_kills,
                    "interval": self.interval,
                    "hang_timeout": self.hang_timeout,
                    "exhausted": sorted(self._exhausted)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Supervisor(respawns={self._respawns}, "
                f"hang_kills={self._hang_kills})")
