"""Serving-tier worker: one process, one hot shard of the fingerprint space.

A worker owns the arc of matrix fingerprints the
:class:`~repro.serving.router.HashRing` assigns it, and keeps that arc
*hot* by wrapping the whole single-process serving stack from PRs 1–5:

* a :class:`~repro.engine.cache.CompiledSolverCache` (per-worker LRU) over a
  :class:`~repro.engine.store.TieredSynthesisStore` (node-local directory →
  shared fleet directory), so a cold worker warm-starts from disk instead of
  re-synthesising;
* a :class:`~repro.engine.aio.AsyncSolveEngine`, so same-fingerprint
  requests arriving in a burst are answered by one fused ``solve_batch``
  sweep — the event loop drains the request pipe greedily, and everything
  drained in one gulp coalesces;
* **backpressure**: when the drained burst exceeds ``backpressure_watermark``
  the worker widens the engine's coalescing window to
  ``max_coalesce_window``, trading a little latency for bigger sweeps —
  exactly the lever that keeps throughput up while the admission layer
  sheds the excess.

Transport is deliberately boring: stdlib :mod:`multiprocessing` queues
carrying picklable tuples (see :data:`MessageKinds` below).  Matrices arrive
either inline (small/one-shot) or as
:class:`~repro.engine.sharedmem.SharedMatrixHandle` references that the
worker attaches zero-copy — the parent publishes each distinct matrix once,
and the handle's publish-time fingerprint doubles as the cache key, so
workers never re-hash bytes.

Per-request failures are *answers*, never crashes: every exception inside a
request is serialised back as an ``("error", ...)`` response carrying the
exception type name, which the front end re-raises as the matching
:mod:`repro.exceptions` class.  The worker loop itself only exits on the
explicit shutdown message.

**Fault injection** — a :class:`~repro.serving.resilience.ChaosPolicy`
(from :attr:`WorkerConfig.chaos` or the ``REPRO_CHAOS`` environment
variable) can deterministically script crashes, hangs, slow responses,
queue stalls and corrupted store payloads, so every recovery path of the
supervisor/retry layer is testable.  With no policy configured the worker
holds ``None`` and the request path never calls in — zero overhead.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import queue as queue_module
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..engine.aio import AsyncSolveEngine
from ..engine.cache import CompiledSolverCache
from ..engine.runner import _limit_worker_threads
from ..engine.sharedmem import SharedMatrixHandle, attach_matrix
from ..engine.store import SynthesisStore, TieredSynthesisStore
from ..exceptions import SolveTimeoutError
from ..obs.events import EventLog
from ..obs.metrics import MetricsRegistry
from ..obs.trace import TraceContext, activated

__all__ = ["WorkerConfig", "worker_main",
           "MSG_SOLVE", "MSG_STATS", "MSG_SHUTDOWN", "MSG_DRAIN", "MSG_WARM"]

#: request-message kinds (first tuple element) a worker understands.
MSG_SOLVE = "solve"
MSG_STATS = "stats"
MSG_SHUTDOWN = "shutdown"
#: drain handshake: ``(MSG_DRAIN, request_id)`` — the worker finishes every
#: solve enqueued *before* the drain marker (the queue is FIFO, so awaiting
#: the pending set after this burst covers them all) and then answers
#: ``("drained", request_id, stats)``.  The process stays up and keeps
#: serving; drain is an admission-side state, not a shutdown.
MSG_DRAIN = "drain"
#: replica warm-up: ``(MSG_WARM, request_id, matrix, params)`` — compile or
#: store-restore the synthesis for ``matrix`` into the local cache without
#: solving anything.  Advisory and silent: failures are swallowed and no
#: response is sent; success shows up as the ``warmed`` stats counter and a
#: warm cache on failover.
MSG_WARM = "warm"

#: fields of a :class:`~repro.core.results.SingleSolveRecord` shipped back
#: in a result response (the front end rebuilds the record from them).
RECORD_FIELDS = ("x", "direction", "scale", "scaled_residual",
                 "block_encoding_calls", "polynomial_degree",
                 "success_probability", "shots", "wall_time")


@dataclass(frozen=True)
class WorkerConfig:
    """Picklable construction recipe for one worker process.

    Attributes
    ----------
    worker_id:
        Ring identity (also stamped into every response).
    local_store_dir / shared_store_dir:
        The disk levels of the tiered cache hierarchy.  ``None`` for both
        disables persistence; a shared dir alone still warm-starts reads.
    cache_maxsize:
        Per-worker compiled-solver LRU entries.
    max_batch_size / coalesce_window / max_concurrency:
        Forwarded to the worker's :class:`~repro.engine.aio.AsyncSolveEngine`.
    backpressure_watermark / max_coalesce_window:
        When one pipe drain yields more than ``backpressure_watermark``
        requests, the coalescing window widens to ``max_coalesce_window``
        (and narrows back once the burst subsides).
    threads:
        BLAS/OpenMP thread cap for the worker process (``None`` = leave
        library defaults).
    incarnation:
        0 for the original spawn; the supervisor increments it on every
        respawn.  It namespaces the chaos RNG streams (so a respawned
        worker replays a *different* but reproducible fault schedule) and
        is reported in stats for observability.
    chaos:
        Optional :class:`~repro.serving.resilience.ChaosSpec` (or plain
        dict) scripting deterministic faults; ``None`` falls back to the
        ``REPRO_CHAOS`` environment variable, and an absent/inert spec
        costs nothing.
    """

    worker_id: str
    local_store_dir: str | None = None
    shared_store_dir: str | None = None
    cache_maxsize: int = 32
    max_batch_size: int = 64
    coalesce_window: float = 0.0
    max_concurrency: int = 2
    backpressure_watermark: int = 8
    max_coalesce_window: float = 0.005
    threads: int | None = 1
    incarnation: int = 0
    chaos: object | None = None
    #: append-only JSONL lifecycle/fault log shared with the front end
    #: (``None`` falls back to ``REPRO_EVENT_LOG``; empty env = memory-only).
    event_log_path: str | None = None
    #: tri-state metrics switch (``None`` = follow ``REPRO_METRICS``); the
    #: front end forwards its own resolved setting so one knob governs both
    #: sides of the queue.
    metrics_enabled: bool | None = None

    def build_store(self, chaos=None, events=None):
        """The tiered store this config describes (``None`` = no persistence).

        ``chaos`` (a resolved :class:`~repro.serving.resilience.ChaosPolicy`)
        attaches to the **node-local** level only: corrupted payloads are a
        per-node fault, and keeping the shared level clean means quarantine
        tests observe exactly one corruption site.
        """
        if self.local_store_dir is None and self.shared_store_dir is None:
            return None
        if self.local_store_dir is None:
            # read-mostly deployment: the shared directory is still worth
            # consulting, with a node-local level living under it in spirit
            # only — single-level store, no promotion target.
            return SynthesisStore(self.shared_store_dir, chaos=chaos,
                                  events=events)
        return TieredSynthesisStore(
            SynthesisStore(self.local_store_dir, chaos=chaos),
            self.shared_store_dir, events=events)

    def build_chaos(self):
        """Resolved :class:`ChaosPolicy` for this incarnation (``None`` = off)."""
        from .resilience import ChaosPolicy

        return ChaosPolicy.resolve(self.chaos, worker_id=self.worker_id,
                                   incarnation=self.incarnation)


def worker_main(config: WorkerConfig, requests, responses) -> None:
    """Process entry point: serve ``requests`` until the shutdown message.

    ``requests`` / ``responses`` are :mod:`multiprocessing` queues; every
    response tuple starts with ``(worker_id, kind, request_id, ...)``.
    """
    _limit_worker_threads(config.threads)
    chaos = config.build_chaos()
    metrics = MetricsRegistry(enabled=config.metrics_enabled)
    events = EventLog(config.event_log_path, source=config.worker_id)
    if chaos is not None:
        chaos.events = events
    cache = CompiledSolverCache(maxsize=config.cache_maxsize,
                                store=config.build_store(chaos=chaos,
                                                         events=events),
                                metrics=metrics)
    try:
        asyncio.run(_serve(config, cache, requests, responses, chaos=chaos,
                           metrics=metrics, events=events))
    finally:
        events.close()


async def _serve(config: WorkerConfig, cache: CompiledSolverCache,
                 requests, responses, chaos=None, metrics=None,
                 events=None) -> None:
    engine = AsyncSolveEngine(cache=cache,
                              max_batch_size=config.max_batch_size,
                              coalesce_window=config.coalesce_window,
                              max_concurrency=config.max_concurrency,
                              metrics=metrics)
    loop = asyncio.get_running_loop()
    reader = ThreadPoolExecutor(max_workers=1,
                                thread_name_prefix=f"{config.worker_id}-rx")
    pending: set[asyncio.Task] = set()
    served = 0
    warmed = 0
    drains = 0
    widenings = 0
    peak_burst = 0
    started_at = time.monotonic()
    request_serial = 0

    def respond(kind: str, request_id, *payload) -> None:
        responses.put((config.worker_id, kind, request_id, *payload))

    if events is not None:
        # besides the (shared) JSONL file, ship every worker-side event to
        # the front end over the response queue so its in-memory ring holds
        # the whole cluster timeline.  Crash events may lose this copy (the
        # queue feeder might not flush before os._exit) — which is exactly
        # why _record_fault fsyncs the file line first.
        events.on_emit = lambda record: respond("event", None, record)

    async def handle_solve(message, serial: int) -> None:
        nonlocal served
        _, request_id, matrix, rhs, params = message
        wire = params.get("trace")
        trace = TraceContext.from_wire(wire, origin=config.worker_id)
        sampled = trace is not None and trace.sampled

        def spans_out():
            return trace.export_spans() if sampled else None

        with activated(trace) if trace is not None else contextlib.nullcontext():
            try:
                if sampled:
                    trace.add_span(
                        "queue_wait",
                        duration=max(0.0,
                                     time.monotonic() - wire["enqueued_at"]),
                        worker=config.worker_id,
                        incarnation=config.incarnation)
                if chaos is not None:
                    action = chaos.on_request(serial)
                    if action == "crash":
                        # a real crash: no answer, no cleanup — the front
                        # end's reaper and supervisor must cope with this.
                        os._exit(23)
                    elif action == "hang":
                        # block the event loop synchronously: heartbeats
                        # stop, which is what distinguishes hung from slow.
                        time.sleep(chaos.spec.hang_seconds)
                    elif action == "slow":
                        await asyncio.sleep(chaos.spec.slow_seconds)
                fingerprint = None
                if isinstance(matrix, SharedMatrixHandle):
                    fingerprint = matrix.fingerprint
                    matrix = attach_matrix(matrix)
                deadline_at = params.get("deadline_at")
                remaining = None
                if deadline_at is not None:
                    # deadlines are absolute CLOCK_MONOTONIC stamps taken in
                    # the front end (system-wide on Linux), so time spent
                    # queued between the processes counts against the budget.
                    remaining = float(deadline_at) - time.monotonic()
                    if remaining <= 0.0:
                        raise SolveTimeoutError(
                            f"deadline expired {-remaining:.4f}s before the "
                            "worker dequeued the request", late_by=-remaining)
                record = await engine.solve(
                    matrix, rhs,
                    epsilon_l=params.get("epsilon_l", 1e-2),
                    backend=params.get("backend", "auto"),
                    kappa=params.get("kappa"),
                    fingerprint=fingerprint,
                    deadline=remaining,
                    **params.get("backend_options", {}))
                served += 1
                respond("result", request_id,
                        {field: getattr(record, field)
                         for field in RECORD_FIELDS},
                        spans_out())
            except BaseException as exc:  # noqa: BLE001 - answers, not crashes
                respond("error", request_id, type(exc).__name__, str(exc),
                        spans_out())

    async def handle_warm(message) -> None:
        """Pre-compile a replica's synthesis without solving anything.

        Runs :meth:`CompiledSolverCache.solver` off the event loop: on the
        usual path the primary already persisted the synthesis through the
        tiered store, so this is a disk restore, and a later failover hits
        a warm cache instead of paying a recompile.  Purely advisory — any
        failure is swallowed (a cold replica is still a correct replica)
        and the chaos request stream is untouched (``request_serial`` does
        not advance, so warm-ups never shift a scripted crash schedule).
        """
        nonlocal warmed
        _, _request_id, matrix, params = message
        try:
            fingerprint = None
            if isinstance(matrix, SharedMatrixHandle):
                fingerprint = matrix.fingerprint
                matrix = attach_matrix(matrix)

            def compile_synthesis():
                return cache.solver(
                    matrix,
                    epsilon_l=params.get("epsilon_l", 1e-2),
                    backend=params.get("backend", "auto"),
                    kappa=params.get("kappa"),
                    fingerprint=fingerprint,
                    **params.get("backend_options", {}))

            await loop.run_in_executor(None, compile_synthesis)
            warmed += 1
        except Exception:  # noqa: BLE001 - advisory; cold replica is fine
            pass

    def stats_snapshot() -> dict:
        now = time.monotonic()
        stats = engine.stats()
        stats.update({
            "worker_id": config.worker_id,
            "pid": os.getpid(),
            "served": served,
            "warmed": warmed,
            "drains": drains,
            "queue_depth": _queue_depth(requests) + len(pending),
            "backpressure_widenings": widenings,
            "peak_burst": peak_burst,
            "coalesce_window": engine.coalesce_window,
            # heartbeat is a CLOCK_MONOTONIC stamp (system-wide on Linux,
            # the same clock the front end reads), so the supervisor and
            # /healthz can tell a *hung* worker (stale heartbeat, queued
            # work) from a merely slow one (fresh heartbeat, long sweeps).
            "heartbeat": now,
            "uptime_s": now - started_at,
            "incarnation": config.incarnation,
            "chaos_enabled": chaos is not None,
        })
        if metrics is not None and metrics.enabled:
            # snapshots are mergeable: the front end folds every worker's
            # copy into one cluster view (relabelled by worker id).
            stats["metrics"] = metrics.snapshot()
            stats["metrics_snapshot_at"] = now
        if events is not None:
            stats["events"] = events.stats()
        return stats

    try:
        shutting_down = False
        while not shutting_down:
            message = await loop.run_in_executor(reader, requests.get)
            if chaos is not None:
                stall = chaos.on_drain()
                if stall > 0.0:
                    # queue stall: requests pile up undrained (and the
                    # event loop wedges), exactly a stuck feeder thread.
                    time.sleep(stall)
            burst = [message]
            # greedy drain: everything already queued joins this event-loop
            # turn, which is exactly what lets the engine coalesce it into
            # few sweeps even with a zero-width window.
            while True:
                try:
                    burst.append(requests.get_nowait())
                except queue_module.Empty:
                    break
            solves = sum(1 for m in burst if m[0] == MSG_SOLVE)
            peak_burst = max(peak_burst, solves)
            if solves > config.backpressure_watermark:
                if engine.coalesce_window != config.max_coalesce_window:
                    widenings += 1
                engine.coalesce_window = config.max_coalesce_window
            else:
                engine.coalesce_window = config.coalesce_window
            drain_acks: list = []
            for message in burst:
                kind = message[0]
                if kind == MSG_SHUTDOWN:
                    shutting_down = True
                elif kind == MSG_STATS:
                    respond("stats", message[1], stats_snapshot())
                elif kind == MSG_DRAIN:
                    drain_acks.append(message[1])
                elif kind == MSG_WARM:
                    task = loop.create_task(handle_warm(message))
                    pending.add(task)
                    task.add_done_callback(pending.discard)
                elif kind == MSG_SOLVE:
                    task = loop.create_task(
                        handle_solve(message, request_serial))
                    request_serial += 1
                    pending.add(task)
                    task.add_done_callback(pending.discard)
                else:
                    respond("error", None, "ValueError",
                            f"unknown message kind {kind!r}")
            if drain_acks:
                # every solve enqueued before the drain marker is in
                # ``pending`` by now (FIFO queue + greedy burst drain), so
                # awaiting the set *is* the drain barrier.  New work keeps
                # arriving afterwards — drain does not stop the loop.
                if pending:
                    await asyncio.gather(*list(pending),
                                         return_exceptions=True)
                drains += len(drain_acks)
                for drain_id in drain_acks:
                    respond("drained", drain_id, stats_snapshot())
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        respond("shutdown", None, stats_snapshot())
    finally:
        engine.close()
        reader.shutdown(wait=False)


def _queue_depth(mp_queue) -> int:
    """Best-effort queue depth (``qsize`` is unimplemented on some platforms)."""
    try:
        return int(mp_queue.qsize())
    except (NotImplementedError, OSError):  # pragma: no cover - macOS
        return 0
