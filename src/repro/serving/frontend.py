"""Cluster front end: routed, admission-controlled access to a worker fleet.

:class:`ClusterEngine` is the in-process API (``submit`` / ``solve`` /
``stats``); :class:`ServingHTTPServer` wraps it in a minimal stdlib
HTTP/JSON surface.  One request travels::

        submit(A, b)
          │  fingerprint(A)                    (hash once per live object)
          │  HashRing.route(fingerprint) ──────→ worker_id   (sticky: cache heat)
          │  AdmissionController.admit() ──────→ may raise QuotaExceededError /
          │                                      QueueFullError (both retriable)
          │  SharedMatrixRegistry.publish(A)    (one shared segment per matrix)
          ▼
        worker request queue ──(multiprocessing)──→ AsyncSolveEngine
          ▲                                        coalesced fused sweep
          │                                        tiered store warm-start
        response queue ←─ result / typed error ←───┘

Guarantees the tests pin down:

* **determinism** — a fingerprint routes to the same worker for as long as
  that worker lives, so its compiled-solver cache, node-local store and
  shared-memory attachments stay hot; cluster answers equal single-process
  answers to 1e-12;
* **graceful degradation** — overload never queues unboundedly: requests
  are shed *at the front door* with explicit retriable errors, admitted
  requests keep bounded latency, and no exception type other than the
  documented rejections escapes the API;
* **churn containment** — a dead worker takes only its own arc with it:
  its in-flight requests fail retriably
  (:class:`~repro.exceptions.WorkerUnavailableError`), the ring drops its
  virtual nodes, and every other fingerprint keeps its warm home.
"""

from __future__ import annotations

import itertools
import json
import queue as queue_module
import threading
import time
import weakref
from concurrent.futures import Future, TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from .. import exceptions as exceptions_module
from ..core.results import SingleSolveRecord
from ..engine.runner import _fork_context
from ..engine.sharedmem import SharedMatrixRegistry
from ..exceptions import (
    AdmissionError,
    ReproError,
    SolveTimeoutError,
    WorkerUnavailableError,
)
from ..utils import LatencyHistogram, matrix_fingerprint
from .admission import AdmissionController
from .router import DEFAULT_VNODES, HashRing
from .worker import (
    MSG_SHUTDOWN,
    MSG_SOLVE,
    MSG_STATS,
    WorkerConfig,
    worker_main,
)

__all__ = ["ClusterEngine", "ServingHTTPServer"]


class ClusterEngine:
    """Sharded multi-process solve service behind one ``submit``/``solve`` API.

    Parameters
    ----------
    num_workers:
        Worker processes to spawn (each owns a stable arc of fingerprints).
    vnodes:
        Virtual nodes per worker on the hash ring.
    queue_limit:
        Per-worker in-flight bound; beyond it requests shed with
        :class:`~repro.exceptions.QueueFullError`.  ``None`` disables.
    tenant_rate / tenant_burst:
        Per-tenant token-bucket quota (tokens/second, bucket size);
        ``tenant_rate=None`` disables quotas.
    local_store_dir / shared_store_dir:
        Disk levels of the tiered cache hierarchy.  Each worker gets its own
        subdirectory of ``local_store_dir`` (node-local level); the shared
        directory is common to the fleet and may be read-only.
    use_shared_memory:
        Publish each distinct matrix into one shared-memory segment and hand
        workers a fingerprint handle (default); off = pickle matrices per
        request.
    default_deadline:
        Deadline (seconds) applied to requests that do not pass their own.
    max_batch_size / coalesce_window / backpressure_watermark /
    max_coalesce_window / cache_maxsize / threads_per_worker:
        Forwarded into each :class:`~repro.serving.worker.WorkerConfig`.

    Use as a context manager (or call :meth:`close`) — worker processes and
    shared-memory segments are released deterministically.
    """

    def __init__(self, *, num_workers: int = 2, vnodes: int = DEFAULT_VNODES,
                 queue_limit: int | None = 64,
                 tenant_rate: float | None = None,
                 tenant_burst: float | None = None,
                 local_store_dir=None, shared_store_dir=None,
                 use_shared_memory: bool = True,
                 default_deadline: float | None = None,
                 max_batch_size: int = 64, coalesce_window: float = 0.0,
                 backpressure_watermark: int = 8,
                 max_coalesce_window: float = 0.005,
                 cache_maxsize: int = 32,
                 threads_per_worker: int | None = 1) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.default_deadline = default_deadline
        self._ring = HashRing(vnodes=vnodes)
        self._admission = AdmissionController(queue_limit=queue_limit,
                                              tenant_rate=tenant_rate,
                                              tenant_burst=tenant_burst)
        self._latency = LatencyHistogram()
        self._registry = SharedMatrixRegistry() if use_shared_memory else None
        if self._registry is not None:
            # Start the resource tracker *before* forking the workers: a fork
            # child that first touches shared memory with no inherited tracker
            # fd spawns its own tracker, which then never observes the
            # parent's unlink and warns about "leaked" segments at shutdown.
            from multiprocessing import resource_tracker
            resource_tracker.ensure_running()
        context = _fork_context()
        if context is None:  # pragma: no cover - non-POSIX platforms
            import multiprocessing
            context = multiprocessing.get_context()
        self._responses = context.Queue()
        self._lock = threading.Lock()
        #: request_id -> (future, worker_id, started, counts_depth);
        #: counts_depth is False for control traffic (stats probes), which
        #: must never occupy admission slots.
        self._inflight: dict[int, tuple[Future, str, float, bool]] = {}
        self._depth: dict[str, int] = {}
        self._request_ids = itertools.count()
        #: id(matrix) -> (fingerprint, memo payload, weakref); see
        #: :meth:`_prepare_matrix` for why the reference must be weak.
        self._matrix_memo: dict[int, tuple[str, object, weakref.ref]] = {}
        self._retired: set[str] = set()
        self._worker_deaths = 0
        self._submitted = 0
        self._completed = 0
        self._closing = threading.Event()
        self._workers: dict[str, dict] = {}
        for index in range(num_workers):
            worker_id = f"worker-{index}"
            config = WorkerConfig(
                worker_id=worker_id,
                local_store_dir=(None if local_store_dir is None
                                 else str(local_store_dir) + f"/{worker_id}"),
                shared_store_dir=(None if shared_store_dir is None
                                  else str(shared_store_dir)),
                cache_maxsize=cache_maxsize,
                max_batch_size=max_batch_size,
                coalesce_window=coalesce_window,
                backpressure_watermark=backpressure_watermark,
                max_coalesce_window=max_coalesce_window,
                threads=threads_per_worker)
            requests = context.Queue()
            process = context.Process(
                target=worker_main, args=(config, requests, self._responses),
                name=f"repro-serving-{worker_id}", daemon=True)
            self._workers[worker_id] = {"config": config, "requests": requests,
                                        "process": process, "final_stats": None}
            self._depth[worker_id] = 0
        for worker in self._workers.values():
            worker["process"].start()
        for worker_id in self._workers:
            self._ring.add_worker(worker_id)
        self._collector = threading.Thread(target=self._collect,
                                           name="repro-cluster-rx", daemon=True)
        self._collector.start()

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #
    def submit(self, matrix, rhs, *, epsilon_l: float = 1e-2,
               backend: str = "auto", kappa: float | None = None,
               tenant: str | None = None, deadline: float | None = None,
               **backend_options) -> Future:
        """Route + admit + dispatch one request; returns a ``Future``.

        Raises the admission rejections synchronously (the request was never
        dispatched — safe to retry); solve failures, worker deaths and
        deadline expiries surface through the future.  The returned future
        carries the routed worker id as ``future.worker_id``.
        """
        if self._closing.is_set():
            raise RuntimeError("ClusterEngine is closed")
        fingerprint, payload = self._prepare_matrix(matrix)
        worker_id = self._ring.route(fingerprint)
        future: Future = Future()
        future.worker_id = worker_id
        request_id = next(self._request_ids)
        with self._lock:
            # admit under the lock so depth-check and increment are atomic
            # (two racing submits must not both squeeze under the watermark).
            self._admission.admit(worker_id, self._depth.get(worker_id, 0),
                                  tenant=tenant)
            self._depth[worker_id] = self._depth.get(worker_id, 0) + 1
            self._inflight[request_id] = (future, worker_id,
                                          time.monotonic(), True)
            self._submitted += 1
        if deadline is None:
            deadline = self.default_deadline
        params = {
            "epsilon_l": float(epsilon_l),
            "backend": backend,
            "kappa": kappa,
            "backend_options": backend_options,
            "deadline_at": (None if deadline is None
                            else time.monotonic() + float(deadline)),
        }
        message = (MSG_SOLVE, request_id, payload,
                   np.array(rhs, dtype=float, copy=True), params)
        try:
            self._workers[worker_id]["requests"].put(message)
        except BaseException:
            self._settle(request_id, None, None)
            raise
        # Close the submit/reap race: the reaper may have retired this worker
        # between route() and the _inflight registration above, in which case
        # its orphan scan ran too early to see us.  Both sides touch _retired
        # and _inflight under the lock, so at least one of them observes the
        # other; _settle is idempotent, so double-settling is harmless.
        with self._lock:
            retired = worker_id in self._retired
        if retired:
            self._settle(request_id, None, WorkerUnavailableError(
                f"worker {worker_id!r} was retired while the request was "
                "being dispatched; its fingerprints now route elsewhere"))
        return future

    def solve(self, matrix, rhs, **kwargs) -> SingleSolveRecord:
        """Blocking convenience wrapper: ``submit(...).result()``."""
        return self.submit(matrix, rhs, **kwargs).result()

    def _prepare_matrix(self, matrix) -> tuple[str, object]:
        """(fingerprint, wire payload) for a matrix, memoised while it lives.

        With shared memory on, the payload is a
        :class:`~repro.engine.sharedmem.SharedMatrixHandle` — published once
        per distinct content, attached zero-copy by the owning worker.

        The memo keys on ``id(matrix)`` but, unlike the runner's publish memo
        (whose jobs list pins every array for the scope of one run), this
        memo is engine-lifetime while the caller's arrays are not — an HTTP
        request's matrix dies when the handler returns, and CPython reuses
        ids.  The entry therefore holds only a *weak* reference whose
        callback evicts it during the array's deallocation: a recycled id can
        never resurrect another matrix's fingerprint, and the memo stays
        bounded by the set of live client arrays.  Objects without weakref
        support are simply re-hashed per call — correctness never depends on
        the memo because :meth:`SharedMatrixRegistry.publish` dedups by
        content fingerprint.
        """
        key = id(matrix)
        memo = self._matrix_memo.get(key)
        if memo is not None:
            fingerprint, memo_payload, ref = memo
            if ref() is matrix:
                return fingerprint, (matrix if memo_payload is None
                                     else memo_payload)
        if self._registry is not None:
            handle = self._registry.publish(matrix)
            fingerprint, payload, memo_payload = (handle.fingerprint,
                                                  handle, handle)
        else:
            # payload is the matrix itself (pickled per request); memoise
            # only the fingerprint so the memo never pins the array alive.
            fingerprint, payload, memo_payload = (matrix_fingerprint(matrix),
                                                  matrix, None)
        try:
            ref = weakref.ref(
                matrix,
                lambda _ref, pop=self._matrix_memo.pop, key=key: pop(key, None))
        except TypeError:  # weakref-less input (e.g. a plain nested list)
            return fingerprint, payload
        self._matrix_memo[key] = (fingerprint, memo_payload, ref)
        return fingerprint, payload

    # ------------------------------------------------------------------ #
    # response path
    # ------------------------------------------------------------------ #
    def _collect(self) -> None:
        """Collector thread: settle futures, notice dead workers."""
        last_reap = time.monotonic()
        while True:
            try:
                response = self._responses.get(timeout=0.05)
            except queue_module.Empty:
                if self._closing.is_set() and not self._inflight:
                    return
                self._reap_dead_workers()
                last_reap = time.monotonic()
                continue
            except (EOFError, OSError):  # pragma: no cover - queue torn down
                return
            try:
                self._dispatch(response)
            except Exception:  # noqa: BLE001 - one bad response must not
                pass           # kill the loop and hang every other future
            # reap on a clock too: a steady response stream from live
            # workers must not starve detection of a dead sibling.
            if time.monotonic() - last_reap >= 0.25:
                self._reap_dead_workers()
                last_reap = time.monotonic()

    def _dispatch(self, response) -> None:
        """Route one worker response to its future / stats slot."""
        worker_id, kind, request_id, *payload = response
        if kind == "result":
            self._settle(request_id,
                         SingleSolveRecord(**payload[0]), None)
        elif kind == "error":
            name, message = payload
            self._settle(request_id, None,
                         _rebuild_exception(name, message))
        elif kind == "stats":
            self._settle(request_id, payload[0], None, record_latency=False)
        elif kind == "shutdown":
            worker = self._workers.get(worker_id)
            if worker is not None:
                worker["final_stats"] = payload[0]

    def _settle(self, request_id, result, error, *,
                record_latency: bool = True) -> None:
        """Resolve one in-flight future and release its queue slot.

        Idempotent (the first caller pops the entry; later ones no-op), and
        safe against caller-side ``Future.cancel()`` — a cancelled future
        rejects ``set_result``/``set_exception``, and raising here would kill
        the collector thread, so the slot is released and the settle skipped.
        """
        with self._lock:
            entry = self._inflight.pop(request_id, None)
            if entry is None:
                return
            future, worker_id, started, counts_depth = entry
            if counts_depth:
                self._depth[worker_id] = max(0,
                                             self._depth.get(worker_id, 1) - 1)
                if error is None:
                    self._completed += 1
        if not future.set_running_or_notify_cancel():
            return  # caller cancelled; the slot above is already released
        if error is not None:
            future.set_exception(error)
        else:
            if record_latency and isinstance(result, SingleSolveRecord):
                self._latency.record(time.monotonic() - started)
            future.set_result(result)

    def _reap_dead_workers(self) -> None:
        """Retire crashed workers: shrink the ring, fail their in-flight.

        Consistent hashing makes this the *only* re-sharding step needed —
        the dead worker's arcs fall to its ring successors, every other
        fingerprint keeps its warm owner.
        """
        if self._closing.is_set():
            return
        for worker_id, worker in self._workers.items():
            if worker_id in self._retired or worker["process"].is_alive():
                continue
            with self._lock:
                self._retired.add(worker_id)
            self._worker_deaths += 1
            self._ring.remove_worker(worker_id)
        # Orphan scan over *all* retired owners, every pass — not only at
        # retirement time: a submit racing the retirement may register its
        # entry just after a one-shot scan, and the retired check in submit
        # plus this rescan together guarantee the future settles.
        with self._lock:
            orphaned = [(request_id, owner) for request_id,
                        (_, owner, _, _) in self._inflight.items()
                        if owner in self._retired]
        for request_id, owner in orphaned:
            self._settle(request_id, None, WorkerUnavailableError(
                f"worker {owner!r} died with the request in flight; "
                "its fingerprints now route to the surviving workers"))

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #
    def worker_stats(self, timeout: float = 5.0) -> dict:
        """Per-worker telemetry snapshots (cache, coalescing, queue depth).

        Stats probes ride the worker request queues but are *control*
        traffic: they never count against the admission ``queue_limit``
        (``counts_depth=False``), so monitoring cannot shed — or be shed by
        — solve load, and a probe that times out releases its in-flight
        entry instead of leaking it on every poll of a wedged worker.
        """
        pending: dict[str, tuple[int, Future]] = {}
        for worker_id, worker in self._workers.items():
            future: Future = Future()
            request_id = next(self._request_ids)
            with self._lock:
                if worker_id in self._retired:
                    continue
                self._inflight[request_id] = (future, worker_id,
                                              time.monotonic(), False)
            try:
                worker["requests"].put((MSG_STATS, request_id))
            except (ValueError, OSError):  # pragma: no cover - queue torn down
                self._settle(request_id, None, None, record_latency=False)
                continue
            pending[worker_id] = (request_id, future)
        snapshots = {}
        for worker_id, (request_id, future) in pending.items():
            try:
                snapshots[worker_id] = future.result(timeout=timeout)
            except FutureTimeoutError:
                self._settle(request_id, None, None, record_latency=False)
                snapshots[worker_id] = {"error": "stats probe timed out"}
            except Exception as exc:  # noqa: BLE001
                snapshots[worker_id] = {"error": f"{type(exc).__name__}: {exc}"}
        with self._lock:
            retired = sorted(self._retired)
        for worker_id in retired:
            final = self._workers[worker_id]["final_stats"]
            snapshots[worker_id] = {"retired": True, "final": final}
        return snapshots

    def stats(self, *, include_workers: bool = True) -> dict:
        """Cluster snapshot: ring, admission, latency, depths, workers."""
        with self._lock:
            depths = dict(self._depth)
            submitted = self._submitted
            completed = self._completed
            inflight = len(self._inflight)
        stats = {
            "workers_alive": len(self._ring),
            "worker_deaths": self._worker_deaths,
            "submitted": submitted,
            "completed": completed,
            "inflight": inflight,
            "queue_depths": depths,
            "ring": self._ring.stats(),
            "admission": self._admission.stats(),
            "latency": self._latency.summary(),
            "shared_memory": (None if self._registry is None
                              else self._registry.stats()),
        }
        if include_workers:
            stats["per_worker"] = self.worker_stats()
        return stats

    @property
    def workers_alive(self) -> list[str]:
        """Ids of the workers currently on the ring."""
        return self._ring.workers

    def route(self, matrix) -> str:
        """Which live worker owns this matrix's fingerprint (no dispatch)."""
        fingerprint, _ = self._prepare_matrix(matrix)
        return self._ring.route(fingerprint)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self, timeout: float = 5.0) -> None:
        """Drain, stop the workers and release every shared resource."""
        if self._closing.is_set():
            return
        self._closing.set()
        for worker_id, worker in self._workers.items():
            if worker_id not in self._retired:
                try:
                    worker["requests"].put((MSG_SHUTDOWN,))
                except (ValueError, OSError):  # pragma: no cover
                    pass
        deadline = time.monotonic() + timeout
        for worker in self._workers.values():
            worker["process"].join(max(0.1, deadline - time.monotonic()))
            if worker["process"].is_alive():
                worker["process"].terminate()
                worker["process"].join(1.0)
        # fail whatever is still unresolved, then let the collector exit.
        with self._lock:
            orphaned = list(self._inflight)
        for request_id in orphaned:
            self._settle(request_id, None,
                         WorkerUnavailableError("cluster engine closed"))
        self._collector.join(timeout=2.0)
        if self._registry is not None:
            self._registry.close()

    def __enter__(self) -> "ClusterEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ClusterEngine(workers={len(self._ring)}, "
                f"submitted={self._submitted}, deaths={self._worker_deaths})")


def _rebuild_exception(name: str, message: str) -> BaseException:
    """Re-raise a worker-side failure as its own exception type when known.

    Only types defined in :mod:`repro.exceptions` cross the boundary as
    themselves (their constructors accept a plain message); anything else —
    numpy errors, bugs — becomes a ``RuntimeError`` tagged with the original
    type name, preserving per-request fault isolation without trusting
    arbitrary constructors.
    """
    exc_type = getattr(exceptions_module, name, None)
    if (isinstance(exc_type, type) and issubclass(exc_type, ReproError)):
        try:
            return exc_type(message)
        except TypeError:  # pragma: no cover - exotic constructor signature
            pass
    return RuntimeError(f"{name}: {message}")


# ---------------------------------------------------------------------- #
# HTTP front end
# ---------------------------------------------------------------------- #
def _jsonable(value):
    """Recursively convert numpy containers/scalars to JSON-safe values."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


class ServingHTTPServer:
    """Minimal stdlib HTTP/JSON surface over a :class:`ClusterEngine`.

    Endpoints::

        POST /solve    {"matrix": [[...]], "rhs": [...],
                        "epsilon_l"?, "backend"?, "kappa"?,
                        "tenant"?, "deadline"?}
                       → 200 {"x": [...], "scaled_residual": ..., ...}
                       → 429 admission rejection (Retry-After set when known)
                       → 504 deadline expired
                       → 400 solve-level failure (singular matrix, ...)
        GET  /stats    → 200 cluster stats snapshot
        GET  /healthz  → 200 {"ok": true, "workers_alive": W}

    Rejections are **bodies, not exceptions**: every response carries
    ``{"error", "message", "retriable"}`` so clients can retry on
    ``retriable: true`` without parsing prose.  Bind to port 0 to let the
    OS pick (see :attr:`address`); the server runs on daemon threads and
    stops with :meth:`close`.
    """

    def __init__(self, engine: ClusterEngine, *, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.engine = engine
        handler = _make_handler(engine)
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-serving-http", daemon=True)
        self._thread.start()

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolves here)."""
        return self._server.server_address[:2]

    def close(self) -> None:
        """Stop accepting requests and join the accept loop."""
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=2.0)

    def __enter__(self) -> "ServingHTTPServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _make_handler(engine: ClusterEngine):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *args):  # silence per-request stderr noise
            pass

        def _reply(self, status: int, body: dict,
                   headers: dict | None = None) -> None:
            data = json.dumps(_jsonable(body)).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self):
            if self.path == "/healthz":
                self._reply(200, {"ok": True,
                                  "workers_alive": len(engine.workers_alive)})
            elif self.path == "/stats":
                self._reply(200, engine.stats())
            else:
                self._reply(404, {"error": "NotFound", "message": self.path,
                                  "retriable": False})

        def do_POST(self):
            if self.path != "/solve":
                self._reply(404, {"error": "NotFound", "message": self.path,
                                  "retriable": False})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                request = json.loads(self.rfile.read(length) or b"{}")
                matrix = np.array(request["matrix"], dtype=float)
                rhs = np.array(request["rhs"], dtype=float)
            except (KeyError, ValueError, TypeError, json.JSONDecodeError) as exc:
                self._reply(400, {"error": type(exc).__name__,
                                  "message": str(exc), "retriable": False})
                return
            kwargs = {key: request[key] for key
                      in ("epsilon_l", "backend", "kappa", "tenant", "deadline")
                      if request.get(key) is not None}
            try:
                future = engine.submit(matrix, rhs, **kwargs)
                record = future.result()
            except AdmissionError as exc:
                headers = ({} if exc.retry_after is None
                           else {"Retry-After": f"{exc.retry_after:.3f}"})
                self._reply(429, {"error": type(exc).__name__,
                                  "message": str(exc), "retriable": True},
                            headers)
                return
            except SolveTimeoutError as exc:
                self._reply(504, {"error": type(exc).__name__,
                                  "message": str(exc), "retriable": True})
                return
            except ReproError as exc:
                self._reply(400, {"error": type(exc).__name__,
                                  "message": str(exc), "retriable": False})
                return
            except Exception as exc:  # noqa: BLE001 - no 500-by-traceback
                self._reply(500, {"error": type(exc).__name__,
                                  "message": str(exc), "retriable": False})
                return
            self._reply(200, {
                "x": record.x,
                "scaled_residual": record.scaled_residual,
                "scale": record.scale,
                "block_encoding_calls": record.block_encoding_calls,
                "polynomial_degree": record.polynomial_degree,
                "wall_time": record.wall_time,
                "worker": future.worker_id,
            })

    return Handler
