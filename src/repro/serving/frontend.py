"""Cluster front end: routed, admission-controlled access to a worker fleet.

:class:`ClusterEngine` is the in-process API (``submit`` / ``solve`` /
``stats``); :class:`ServingHTTPServer` wraps it in a minimal stdlib
HTTP/JSON surface.  One request travels::

        submit(A, b)
          │  fingerprint(A)                    (hash once per live object)
          │  HashRing.route(fingerprint) ──────→ worker_id   (sticky: cache heat)
          │  AdmissionController.admit() ──────→ may raise QuotaExceededError /
          │                                      QueueFullError (both retriable)
          │  SharedMatrixRegistry.publish(A)    (one shared segment per matrix)
          ▼
        worker request queue ──(multiprocessing)──→ AsyncSolveEngine
          ▲                                        coalesced fused sweep
          │                                        tiered store warm-start
        per-worker response queue ←─ result / typed error ←───┘
        (isolated so a worker crashing mid-write can never wedge the
         shared transport for its surviving siblings)

Guarantees the tests pin down:

* **determinism** — a fingerprint routes to the same worker for as long as
  that worker lives, so its compiled-solver cache, node-local store and
  shared-memory attachments stay hot; cluster answers equal single-process
  answers to 1e-12;
* **graceful degradation** — overload never queues unboundedly: requests
  are shed *at the front door* with explicit retriable errors, admitted
  requests keep bounded latency, and no exception type other than the
  documented rejections escapes the API;
* **churn containment** — a dead worker takes only its own arc with it:
  its in-flight requests are redispatched to the surviving ring (or fail
  retriably once the redispatch budget is spent), the ring drops its
  virtual nodes, and every other fingerprint keeps its warm home;
* **self-healing** — a :class:`~repro.serving.resilience.Supervisor`
  respawns dead/hung workers (warm-restoring their compiled-solver state
  from the tiered store) and re-adds them to the ring, so the fleet
  re-converges to full capacity after faults instead of shrinking; a
  per-worker :class:`~repro.serving.resilience.CircuitBreaker` sheds
  traffic for workers presumed down, and when *no* live worker can own a
  request the engine answers from its in-process classical fallback with
  ``degraded=True`` rather than erroring.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import queue as queue_module
import threading
import time
import weakref
from multiprocessing import connection as mp_connection
from concurrent.futures import Future, TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from .. import exceptions as exceptions_module
from ..core.results import SingleSolveRecord
from ..engine.runner import _fork_context
from ..engine.sharedmem import SharedMatrixRegistry
from ..exceptions import (
    AdmissionError,
    CircuitOpenError,
    ReproError,
    SolveTimeoutError,
    WorkerUnavailableError,
)
from ..obs import Observability
from ..obs.metrics import merge_snapshots, relabel_snapshot, render_prometheus
from ..utils import is_linear_operator, matrix_fingerprint
from .admission import AdmissionController
from .resilience import (
    CircuitBreaker,
    HedgePolicy,
    RetryPolicy,
    Supervisor,
    select_replica,
)
from .router import DEFAULT_VNODES, HashRing
from .worker import (
    MSG_DRAIN,
    MSG_SHUTDOWN,
    MSG_SOLVE,
    MSG_STATS,
    MSG_WARM,
    WorkerConfig,
    worker_main,
)

__all__ = ["ClusterEngine", "ServingHTTPServer"]


@dataclasses.dataclass
class _Inflight:
    """Book-keeping for one dispatched request.

    Carries everything needed to *re*-dispatch when the owning worker dies
    (wire payload, rhs copy, params) plus a strong reference to the
    caller's matrix for the classical degraded fallback.  Both live only as
    long as the request is in flight, so the pin is bounded by the queue
    limits.  Control traffic (stats probes) sets ``counts_depth=False`` and
    carries no payload — it is never redispatched or degraded.
    """

    future: Future
    worker_id: str
    started: float
    counts_depth: bool
    fingerprint: str | None = None
    payload: object | None = None
    rhs: np.ndarray | None = None
    params: dict | None = None
    matrix: object | None = None
    redispatches: int = 0
    #: per-request :class:`~repro.obs.trace.TraceContext` (``None`` when
    #: tracing is off); spans recorded by the owning worker are adopted into
    #: it at settle time and the finished tree lands in the tracer's ring.
    trace: object | None = None
    #: ring-ordered replica set at dispatch time (primary first) — the
    #: pre-provisioned failover/hedge candidates for this request.
    replicas: tuple = ()
    #: monotonic stamp at which the hedger doubles this request onto a
    #: replica (``None`` = no hedge armed / already hedged).
    hedge_at: float | None = None
    #: replica currently holding the speculative hedge copy (``None`` = no
    #: hedge in flight); it occupies a depth slot until settle.
    hedge_worker_id: str | None = None


class ClusterEngine:
    """Sharded multi-process solve service behind one ``submit``/``solve`` API.

    Parameters
    ----------
    num_workers:
        Worker processes to spawn (each owns a stable arc of fingerprints).
    vnodes:
        Virtual nodes per worker on the hash ring.
    queue_limit:
        Per-worker in-flight bound; beyond it requests shed with
        :class:`~repro.exceptions.QueueFullError`.  ``None`` disables.
    tenant_rate / tenant_burst:
        Per-tenant token-bucket quota (tokens/second, bucket size);
        ``tenant_rate=None`` disables quotas.
    local_store_dir / shared_store_dir:
        Disk levels of the tiered cache hierarchy.  Each worker gets its own
        subdirectory of ``local_store_dir`` (node-local level); the shared
        directory is common to the fleet and may be read-only.
    use_shared_memory:
        Publish each distinct matrix into one shared-memory segment and hand
        workers a fingerprint handle (default); off = pickle matrices per
        request.
    default_deadline:
        Deadline (seconds) applied to requests that do not pass their own.
    max_batch_size / coalesce_window / backpressure_watermark /
    max_coalesce_window / cache_maxsize / threads_per_worker:
        Forwarded into each :class:`~repro.serving.worker.WorkerConfig`.
    replication_factor:
        How many distinct workers own each fingerprint (``R``).  The ring
        primary serves the request; the other ``R-1`` replicas are the
        pre-provisioned failover and hedge targets, warmed through the
        tiered store after the primary's first solve so a failover costs a
        cache hit, not a recompile.  ``1`` restores single-owner routing.
    hedging / hedge_after:
        Tail-latency hedging: when the primary has not answered within the
        hedge deadline, the request is speculatively doubled onto a replica
        and the first response wins (the loser's late answer is dropped and
        its depth slot released at settle).  ``hedge_after`` pins the
        deadline in seconds; ``None`` derives it live as
        ``3 x cluster p99`` once at least 64 latencies are recorded (so
        cold clusters never hedge).  ``hedging=False`` disables the hedger
        thread entirely.
    respawn:
        Run the :class:`~repro.serving.resilience.Supervisor`: dead workers
        are respawned (warm-restoring from the tiered store) and re-added
        to the ring, hung workers (stale heartbeat with queued work) are
        killed so the same path heals them.  ``False`` restores PR 6's
        shrink-only behaviour.
    supervisor_interval / hang_timeout / max_restarts:
        Supervisor tuning: pass period, heartbeat staleness bound
        (``None`` disables hang detection) and an optional cap on respawns
        per worker.
    probe_timeout:
        Seconds a stats probe may take before a silent worker is declared
        hung — used by the supervisor's hang detection and as the default
        for :meth:`_probe_worker`.
    max_requests_per_incarnation:
        Planned-recycling policy: once a worker's current incarnation has
        dispatched this many requests, the supervisor drains it (zero
        downtime — replicas own its arcs while in-flight work completes)
        and respawns it, one worker at a time.  ``None`` disables.
    retry_policy:
        Optional :class:`~repro.serving.resilience.RetryPolicy` applied to
        *synchronous* admission rejections inside :meth:`submit`
        (quota / queue-full / breaker-open / empty-ring), sleeping between
        attempts.  ``None`` (default) keeps rejections immediate — the PR 6
        contract — while in-flight redispatch below stays on.
    max_redispatch:
        How many times one in-flight request may be re-dispatched to a
        surviving worker after its owner died, before degrading or failing
        retriably.  0 disables redispatch.
    degraded_fallback:
        When no live worker can own a request (empty ring, breaker open,
        redispatch budget spent), solve classically in-process and answer
        with ``degraded=True`` instead of erroring.
    breaker_failure_threshold / breaker_reset_timeout:
        Per-worker circuit-breaker tuning (consecutive infrastructure
        failures to trip; seconds until half-open).
    chaos:
        Optional :class:`~repro.serving.resilience.ChaosSpec` forwarded to
        every worker — the deterministic fault-injection harness.
    observability:
        Optional :class:`~repro.obs.Observability` bundle (metrics registry,
        tracer, event log).  ``None`` builds one from the environment
        (``REPRO_METRICS`` / ``REPRO_TRACE`` / ``REPRO_EVENT_LOG``) and the
        two knobs below.
    trace_sample_rate:
        Deterministic trace sampling rate in ``[0, 1]`` (``None`` follows
        ``REPRO_TRACE``; 0 = tracing fully off, zero per-request overhead).
        Ignored when ``observability`` is passed.
    event_log_path:
        JSONL file all processes append lifecycle/fault events to
        (``None`` follows ``REPRO_EVENT_LOG``; workers share the path).
        Ignored when ``observability`` is passed.

    Use as a context manager (or call :meth:`close`) — worker processes and
    shared-memory segments are released deterministically.
    """

    def __init__(self, *, num_workers: int = 2, vnodes: int = DEFAULT_VNODES,
                 queue_limit: int | None = 64,
                 tenant_rate: float | None = None,
                 tenant_burst: float | None = None,
                 local_store_dir=None, shared_store_dir=None,
                 use_shared_memory: bool = True,
                 default_deadline: float | None = None,
                 max_batch_size: int = 64, coalesce_window: float = 0.0,
                 backpressure_watermark: int = 8,
                 max_coalesce_window: float = 0.005,
                 cache_maxsize: int = 32,
                 threads_per_worker: int | None = 1,
                 replication_factor: int = 2,
                 hedging: bool = True,
                 hedge_after: float | None = None,
                 respawn: bool = True,
                 supervisor_interval: float = 0.2,
                 hang_timeout: float | None = 10.0,
                 probe_timeout: float = 2.0,
                 max_restarts: int | None = None,
                 max_requests_per_incarnation: int | None = None,
                 retry_policy: RetryPolicy | None = None,
                 max_redispatch: int = 2,
                 degraded_fallback: bool = True,
                 breaker_failure_threshold: int = 3,
                 breaker_reset_timeout: float = 1.0,
                 chaos=None,
                 observability: Observability | None = None,
                 trace_sample_rate: float | None = None,
                 event_log_path=None) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if max_redispatch < 0:
            raise ValueError("max_redispatch must be >= 0")
        if replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        self.default_deadline = default_deadline
        self.retry_policy = retry_policy
        self.max_redispatch = int(max_redispatch)
        self.degraded_fallback = bool(degraded_fallback)
        self.replication_factor = int(replication_factor)
        self.probe_timeout = float(probe_timeout)
        self._hedge_policy = (HedgePolicy(hedge_after=hedge_after)
                              if hedging else None)
        if observability is None:
            from ..obs import EventLog, Tracer
            observability = Observability(
                tracer=Tracer(sample_rate=trace_sample_rate),
                events=EventLog(event_log_path, source="frontend"))
        self._obs = observability
        metrics = self._obs.metrics
        self._ring = HashRing(vnodes=vnodes)
        self._admission = AdmissionController(queue_limit=queue_limit,
                                              tenant_rate=tenant_rate,
                                              tenant_burst=tenant_burst,
                                              metrics=metrics)
        # cluster counters: the ad-hoc ints below stay authoritative for
        # stats(); these registry series mirror them onto /metrics (and the
        # latency histogram IS the registry series, so no double recording).
        self._m_requests = metrics.counter(
            "cluster_requests_total", "Requests by final outcome")
        self._m_redispatched = metrics.counter(
            "cluster_redispatched_total",
            "In-flight requests moved off a dead owner")
        self._m_worker_deaths = metrics.counter(
            "cluster_worker_deaths_total", "Worker processes found dead")
        self._m_restarts = metrics.counter(
            "cluster_restarts_total", "Worker incarnations respawned")
        self._m_hedged = metrics.counter(
            "cluster_hedged_total",
            "Requests speculatively doubled onto a replica")
        self._m_hedge_wins = metrics.counter(
            "cluster_hedge_wins_total",
            "Hedged requests answered first by the replica")
        self._m_failovers = metrics.counter(
            "cluster_failovers_total",
            "Requests instantly failed over to a live replica")
        self._g_workers_alive = metrics.gauge(
            "cluster_workers_alive", "Workers currently on the hash ring")
        self._g_inflight = metrics.gauge(
            "cluster_inflight", "Requests currently dispatched")
        self._latency = metrics.histogram(
            "cluster_latency_seconds",
            "Submit-to-settle latency").labelled()
        self._registry = SharedMatrixRegistry() if use_shared_memory else None
        if self._registry is not None:
            # Start the resource tracker *before* forking the workers: a fork
            # child that first touches shared memory with no inherited tracker
            # fd spawns its own tracker, which then never observes the
            # parent's unlink and warns about "leaked" segments at shutdown.
            from multiprocessing import resource_tracker
            resource_tracker.ensure_running()
        context = _fork_context()
        if context is None:  # pragma: no cover - non-POSIX platforms
            import multiprocessing
            context = multiprocessing.get_context()
        self._context = context
        self._lock = threading.Lock()
        #: request_id -> :class:`_Inflight`; ``counts_depth`` is False for
        #: control traffic (stats probes), which must never occupy
        #: admission slots.
        self._inflight: dict[int, _Inflight] = {}
        self._depth: dict[str, int] = {}
        self._request_ids = itertools.count()
        #: id(matrix) -> (fingerprint, memo payload, weakref); see
        #: :meth:`_prepare_matrix` for why the reference must be weak.
        self._matrix_memo: dict[int, tuple[str, object, weakref.ref]] = {}
        self._retired: set[str] = set()
        #: workers mid-planned-recycle: the reaper and supervisor death
        #: paths must not treat their deliberate exit as a crash.
        self._planned: set[str] = set()
        self._worker_deaths = 0
        self._submitted = 0
        self._completed = 0
        self._degraded = 0
        self._redispatched = 0
        self._hedged = 0
        self._hedge_wins = 0
        self._failovers = 0
        #: requests dispatched to each worker's *current* incarnation —
        #: the planned-recycling trigger (reset on respawn).
        self._incarnation_dispatched: dict[str, int] = {}
        #: (worker, incarnation, fingerprint) triples already sent a
        #: replica warm-up, so each synthesis warms each replica once.
        self._warmed: set[tuple] = set()
        self._restarts: dict[str, int] = {}
        self._last_heard: dict[str, float] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._closing = threading.Event()
        self._workers: dict[str, dict] = {}
        self._started_at = time.monotonic()
        #: worker_id -> monotonic stamp of the last metrics snapshot folded
        #: into the cluster view (drives the /healthz staleness report).
        self._metrics_seen: dict[str, float] = {}
        now = time.monotonic()
        worker_event_path = (None if self._obs.events.path is None
                             else str(self._obs.events.path))
        for index in range(num_workers):
            worker_id = f"worker-{index}"
            config = WorkerConfig(
                worker_id=worker_id,
                local_store_dir=(None if local_store_dir is None
                                 else str(local_store_dir) + f"/{worker_id}"),
                shared_store_dir=(None if shared_store_dir is None
                                  else str(shared_store_dir)),
                cache_maxsize=cache_maxsize,
                max_batch_size=max_batch_size,
                coalesce_window=coalesce_window,
                backpressure_watermark=backpressure_watermark,
                max_coalesce_window=max_coalesce_window,
                threads=threads_per_worker,
                chaos=chaos,
                event_log_path=worker_event_path,
                metrics_enabled=metrics.enabled)
            requests = context.Queue()
            # one response queue PER worker, not one shared by the fleet: a
            # multiprocessing.Queue write holds a cross-process feeder lock,
            # so a worker killed mid-put on a shared queue would leave the
            # lock held forever and silence every *surviving* sibling — the
            # exact cascade ("healthy workers look hung, get probed, get
            # killed") that response isolation makes structurally impossible.
            responses = context.Queue()
            process = context.Process(
                target=worker_main, args=(config, requests, responses),
                name=f"repro-serving-{worker_id}", daemon=True)
            self._workers[worker_id] = {"config": config, "requests": requests,
                                        "responses": responses,
                                        "process": process,
                                        "final_stats": None,
                                        "started_at": now}
            self._depth[worker_id] = 0
            self._restarts[worker_id] = 0
            self._incarnation_dispatched[worker_id] = 0
            self._last_heard[worker_id] = now
            self._breakers[worker_id] = CircuitBreaker(
                failure_threshold=breaker_failure_threshold,
                reset_timeout=breaker_reset_timeout,
                listener=self._breaker_listener(worker_id))
        for worker in self._workers.values():
            worker["process"].start()
        for worker_id in self._workers:
            self._ring.add_worker(worker_id)
        self._collector = threading.Thread(target=self._collect,
                                           name="repro-cluster-rx", daemon=True)
        self._collector.start()
        self._supervisor: Supervisor | None = None
        if respawn:
            self._supervisor = Supervisor(
                self, interval=supervisor_interval,
                hang_timeout=hang_timeout,
                probe_timeout=self.probe_timeout,
                max_restarts=max_restarts,
                max_requests_per_incarnation=max_requests_per_incarnation)
            self._supervisor.start()
        self._hedger: threading.Thread | None = None
        if self._hedge_policy is not None and self.replication_factor > 1:
            self._hedger = threading.Thread(target=self._hedge_loop,
                                            name="repro-cluster-hedger",
                                            daemon=True)
            self._hedger.start()

    # ------------------------------------------------------------------ #
    # observability plumbing
    # ------------------------------------------------------------------ #
    def _event(self, kind: str, **fields) -> None:
        """Stamp one lifecycle event on the cluster event log (never raises)."""
        self._obs.events.emit(kind, **fields)

    def _breaker_listener(self, worker_id: str):
        """Event-log adapter for one worker's circuit breaker."""
        def listener(transition: str, **fields) -> None:
            self._event(f"breaker_{transition}", worker=worker_id, **fields)
        return listener

    @property
    def observability(self) -> Observability:
        """The metrics/tracing/event-log bundle this engine reports into."""
        return self._obs

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #
    def submit(self, matrix, rhs, *, epsilon_l: float = 1e-2,
               backend: str = "auto", kappa: float | None = None,
               tenant: str | None = None, deadline: float | None = None,
               **backend_options) -> Future:
        """Route + admit + dispatch one request; returns a ``Future``.

        Raises the admission rejections synchronously (the request was never
        dispatched — safe to retry; with a :attr:`retry_policy` configured,
        retriable rejections are retried here under backoff before
        surfacing); solve failures and deadline expiries surface through
        the future.  A worker death mid-flight redispatches the request to
        the surviving ring up to :attr:`max_redispatch` times, then (with
        :attr:`degraded_fallback`) answers classically with
        ``degraded=True`` — every future settles with a result or a typed
        retriable error, never silence.  The returned future carries the
        routed worker id as ``future.worker_id``.
        """
        if self._closing.is_set():
            raise RuntimeError("ClusterEngine is closed")
        fingerprint, payload = self._prepare_matrix(matrix)
        if deadline is None:
            deadline = self.default_deadline
        params = {
            "epsilon_l": float(epsilon_l),
            "backend": backend,
            "kappa": kappa,
            "backend_options": backend_options,
            "deadline_at": (None if deadline is None
                            else time.monotonic() + float(deadline)),
        }
        rhs_wire = np.array(rhs, dtype=float, copy=True)
        trace = self._obs.tracer.start(origin="fe")
        policy = self.retry_policy
        delay = None
        attempt = 0
        while True:
            try:
                return self._submit_once(matrix, fingerprint, payload,
                                         rhs_wire, params, tenant, trace)
            except AdmissionError as exc:
                if (policy is None or self._closing.is_set()
                        or not policy.should_retry(exc, attempt)):
                    if trace is not None:
                        self._obs.tracer.finish(trace, status="shed",
                                                error=type(exc).__name__)
                    raise
                delay = policy.next_delay(delay, retry_after=exc.retry_after)
                policy.sleep(delay)
                attempt += 1

    def _submit_once(self, matrix, fingerprint: str, payload, rhs_wire,
                     params: dict, tenant: str | None, trace=None) -> Future:
        """One routing/admission/dispatch attempt (see :meth:`submit`)."""
        try:
            if trace is not None:
                with trace.span("route", fingerprint=fingerprint[:16]):
                    replicas = self._ring.route_replicas(
                        fingerprint, self.replication_factor)
            else:
                replicas = self._ring.route_replicas(fingerprint,
                                                     self.replication_factor)
        except WorkerUnavailableError:
            # every worker is gone: either answer classically (and visibly
            # degraded) or let the retriable error reach the retry loop —
            # the supervisor may be mid-respawn.
            if self.degraded_fallback:
                return self._degraded_future(matrix, rhs_wire, trace=trace,
                                             reason="empty_ring")
            raise
        # prefer the ring primary, but fail over *instantly* to the next
        # live replica when the primary's breaker refuses — replicas are
        # warm, so the detour costs a cache hit, not a recompile.
        worker_id = select_replica(replicas, breakers=self._breakers,
                                   retired=self._retired)
        if worker_id is None:
            self._admission.note_breaker_shed()
            if self.degraded_fallback:
                return self._degraded_future(matrix, rhs_wire, trace=trace,
                                             reason="breaker_open")
            breaker = self._breakers.get(replicas[0])
            raise CircuitOpenError(
                f"worker {replicas[0]!r} breaker is open after consecutive "
                "failures (and no replica is eligible); probe admitted when "
                "it half-opens",
                retry_after=(None if breaker is None
                             else breaker.retry_after()))
        if worker_id != replicas[0]:
            with self._lock:
                self._failovers += 1
            self._m_failovers.inc()
            self._event("failover", worker_from=replicas[0],
                        worker_to=worker_id, reason="breaker_open",
                        trace_id=None if trace is None else trace.trace_id)
        future: Future = Future()
        future.worker_id = worker_id
        if trace is not None:
            future.trace_id = trace.trace_id
        request_id = next(self._request_ids)
        hedge_after = self.hedge_deadline()
        admit_started = time.monotonic()
        with self._lock:
            # admit under the lock so depth-check and increment are atomic
            # (two racing submits must not both squeeze under the watermark).
            self._admission.admit(worker_id, self._depth.get(worker_id, 0),
                                  tenant=tenant,
                                  draining=self._ring.is_draining(worker_id))
            self._depth[worker_id] = self._depth.get(worker_id, 0) + 1
            started = time.monotonic()
            self._inflight[request_id] = _Inflight(
                future=future, worker_id=worker_id, started=started,
                counts_depth=True, fingerprint=fingerprint, payload=payload,
                rhs=rhs_wire, params=params, matrix=matrix, trace=trace,
                replicas=tuple(replicas),
                hedge_at=(None if hedge_after is None or len(replicas) < 2
                          else started + hedge_after))
            self._submitted += 1
            self._incarnation_dispatched[worker_id] = (
                self._incarnation_dispatched.get(worker_id, 0) + 1)
            requests = self._workers[worker_id]["requests"]
        if trace is not None:
            trace.add_span("admit", start=admit_started,
                           duration=time.monotonic() - admit_started,
                           worker=worker_id)
            # stamped at dispatch time so the worker-side queue_wait span
            # measures exactly the cross-process queue (both ends read
            # CLOCK_MONOTONIC, which is system-wide on Linux).
            params["trace"] = trace.to_wire()
        message = (MSG_SOLVE, request_id, payload, rhs_wire, params)
        try:
            requests.put(message)
        except BaseException:
            self._settle(request_id, None, None)
            raise
        # Close the submit/reap/respawn races: between route() and the put
        # above, the reaper may have retired this worker (its orphan scan ran
        # too early to see us) or the supervisor may have respawned it (our
        # message sits in the *old* incarnation's queue that nobody reads).
        # Both transitions swap state under the lock, so re-checking here
        # guarantees at least one side observes the other; the owner-lost
        # path is idempotent, so double-handling is harmless.
        with self._lock:
            lost = (worker_id in self._retired
                    or self._workers[worker_id]["requests"] is not requests)
        if lost:
            self._handle_owner_lost(request_id, worker_id)
        return future

    def solve(self, matrix, rhs, **kwargs) -> SingleSolveRecord:
        """Blocking convenience wrapper: ``submit(...).result()``."""
        return self.submit(matrix, rhs, **kwargs).result()

    def _prepare_matrix(self, matrix) -> tuple[str, object]:
        """(fingerprint, wire payload) for a matrix, memoised while it lives.

        With shared memory on, the payload is a
        :class:`~repro.engine.sharedmem.SharedMatrixHandle` — published once
        per distinct content, attached zero-copy by the owning worker.

        The memo keys on ``id(matrix)`` but, unlike the runner's publish memo
        (whose jobs list pins every array for the scope of one run), this
        memo is engine-lifetime while the caller's arrays are not — an HTTP
        request's matrix dies when the handler returns, and CPython reuses
        ids.  The entry therefore holds only a *weak* reference whose
        callback evicts it during the array's deallocation: a recycled id can
        never resurrect another matrix's fingerprint, and the memo stays
        bounded by the set of live client arrays.  Objects without weakref
        support are simply re-hashed per call — correctness never depends on
        the memo because :meth:`SharedMatrixRegistry.publish` dedups by
        content fingerprint.
        """
        key = id(matrix)
        memo = self._matrix_memo.get(key)
        if memo is not None:
            fingerprint, memo_payload, ref = memo
            if ref() is matrix:
                return fingerprint, (matrix if memo_payload is None
                                     else memo_payload)
        if self._registry is not None:
            handle = self._registry.publish(matrix)
            fingerprint, payload, memo_payload = (handle.fingerprint,
                                                  handle, handle)
        else:
            # payload is the matrix itself (pickled per request); memoise
            # only the fingerprint so the memo never pins the array alive.
            fingerprint, payload, memo_payload = (matrix_fingerprint(matrix),
                                                  matrix, None)
        try:
            ref = weakref.ref(
                matrix,
                lambda _ref, pop=self._matrix_memo.pop, key=key: pop(key, None))
        except TypeError:  # weakref-less input (e.g. a plain nested list)
            return fingerprint, payload
        self._matrix_memo[key] = (fingerprint, memo_payload, ref)
        return fingerprint, payload

    # ------------------------------------------------------------------ #
    # hedging
    # ------------------------------------------------------------------ #
    def hedge_deadline(self) -> float | None:
        """Current hedge deadline in seconds (``None`` = hedging inactive).

        Explicit ``hedge_after`` when configured, else derived live from
        the cluster latency histogram (``p99_multiplier x p99`` once the
        window holds enough samples) — the number ``/healthz`` reports so
        operators can watch the deadline track the workload.
        """
        if self._hedge_policy is None or self.replication_factor < 2:
            return None
        return self._hedge_policy.deadline(self._latency.summary())

    def _hedge_loop(self) -> None:
        """Hedger thread: double overdue requests onto their replicas."""
        while not self._closing.wait(0.005):
            try:
                self._scan_hedges()
            except Exception:  # noqa: BLE001 - hedging must outlive bugs
                pass

    def _scan_hedges(self) -> None:
        now = time.monotonic()
        with self._lock:
            due = [request_id for request_id, entry in self._inflight.items()
                   if entry.hedge_at is not None
                   and entry.hedge_worker_id is None
                   and entry.counts_depth and entry.payload is not None
                   and now >= entry.hedge_at]
        for request_id in due:
            self._maybe_hedge(request_id)

    def _maybe_hedge(self, request_id: int) -> None:
        """Speculatively dispatch one overdue request to a live replica.

        First response wins: :meth:`_settle` pops the entry exactly once,
        so the loser's late answer is dropped and both depth slots are
        released together.  The duplicate reuses the same ``request_id`` —
        idempotent settling is what makes hedging safe.
        """
        with self._lock:
            entry = self._inflight.get(request_id)
            if (entry is None or entry.hedge_at is None
                    or entry.hedge_worker_id is not None):
                return
        draining = set(self._ring.draining)
        target = select_replica(entry.replicas, breakers=self._breakers,
                                retired=self._retired, draining=draining,
                                exclude=(entry.worker_id,))
        if target is None:
            # the stored replica set can be *transiently* ineligible (a
            # drain window, an open breaker): a fresh ring walk may
            # surface the next live worker beyond the original R-set.
            try:
                fresh = self._ring.route_replicas(entry.fingerprint,
                                                  max(len(self._ring), 1))
            except (WorkerUnavailableError, ValueError):
                fresh = []
            target = select_replica(fresh, breakers=self._breakers,
                                    retired=self._retired,
                                    draining=draining,
                                    exclude=(entry.worker_id,))
        deadline = self.hedge_deadline()
        with self._lock:
            if self._inflight.get(request_id) is not entry:
                return
            if target is None:
                # defer one deadline rather than cancel: the blocking
                # condition usually clears (undrain, breaker close) long
                # before a gray primary's stall would.
                entry.hedge_at = (None if deadline is None
                                  else time.monotonic() + deadline)
                return
            entry.hedge_at = None
            entry.hedge_worker_id = target
            self._depth[target] = self._depth.get(target, 0) + 1
            self._hedged += 1
            self._incarnation_dispatched[target] = (
                self._incarnation_dispatched.get(target, 0) + 1)
            requests = self._workers[target]["requests"]
        self._m_hedged.inc()
        trace = entry.trace
        params = entry.params
        if trace is not None:
            trace.add_span("hedge_dispatch", worker_from=entry.worker_id,
                           worker_to=target)
            # copy so the hedge's re-stamped enqueued_at cannot race the
            # primary entry's params (redispatch also reads them).
            params = dict(params)
            params["trace"] = trace.to_wire()
        self._event("hedge_dispatch", worker_primary=entry.worker_id,
                    worker_hedge=target,
                    trace_id=None if trace is None else trace.trace_id)
        message = (MSG_SOLVE, request_id, entry.payload, entry.rhs, params)
        try:
            requests.put(message)
        except (ValueError, OSError):
            with self._lock:
                if (self._inflight.get(request_id) is entry
                        and entry.hedge_worker_id == target):
                    entry.hedge_worker_id = None
                    self._depth[target] = max(
                        0, self._depth.get(target, 1) - 1)

    def _warm_replicas(self, entry: _Inflight) -> None:
        """Send this request's synthesis to its other replicas (advisory).

        Runs at settle time, *after* the answering worker's cache has
        persisted the synthesis through the tiered store — so the replica's
        :data:`~repro.serving.worker.MSG_WARM` is a disk restore, not a
        recompile, and a later failover or hedge hits a warm cache.
        Memoised per (worker, incarnation, fingerprint) so steady traffic
        warms each replica exactly once per synthesis.
        """
        if (self.replication_factor < 2 or entry.payload is None
                or entry.fingerprint is None or len(entry.replicas) < 2
                or self._closing.is_set()):
            return
        params = entry.params or {}
        warm_params = {
            "epsilon_l": params.get("epsilon_l", 1e-2),
            "backend": params.get("backend", "auto"),
            "kappa": params.get("kappa"),
            "backend_options": params.get("backend_options", {}),
        }
        for target in entry.replicas:
            if target == entry.worker_id:
                continue
            with self._lock:
                worker = self._workers.get(target)
                if worker is None or target in self._retired:
                    continue
                key = (target, worker["config"].incarnation,
                       entry.fingerprint)
                if key in self._warmed:
                    continue
                if len(self._warmed) > 4096:  # bound the memo, re-warm cheap
                    self._warmed.clear()
                self._warmed.add(key)
                requests = worker["requests"]
            try:
                requests.put((MSG_WARM, None, entry.payload, warm_params))
            except (ValueError, OSError):
                continue
            self._event("replica_warm", worker=target,
                        fingerprint=entry.fingerprint[:16])

    # ------------------------------------------------------------------ #
    # response path
    # ------------------------------------------------------------------ #
    def _collect(self) -> None:
        """Collector thread: settle futures, notice dead workers.

        Multiplexes the per-worker response queues with
        :func:`multiprocessing.connection.wait` on their read pipes.  The
        queue snapshot is re-taken under the lock every iteration because a
        respawn swaps in a fresh queue; a pipe torn down between snapshot
        and wait just surfaces as an ``OSError`` for that round.
        """
        last_reap = time.monotonic()
        while True:
            with self._lock:
                readers = {worker["responses"]._reader: worker["responses"]
                           for worker in self._workers.values()}
            try:
                ready = mp_connection.wait(list(readers), timeout=0.05)
            except OSError:  # pragma: no cover - queue closed mid-wait
                ready = []
            got_any = False
            for reader in ready:
                responses = readers[reader]
                while True:
                    try:
                        response = responses.get_nowait()
                    except queue_module.Empty:
                        break
                    except Exception:  # noqa: BLE001 - a worker killed
                        break  # mid-write leaves a truncated pickle; the
                               # reaper handles the death, drop the bytes
                    got_any = True
                    try:
                        self._dispatch(response)
                    except Exception:  # noqa: BLE001 - one bad response must
                        pass           # not kill the loop and hang the rest
            if not got_any:
                if self._closing.is_set() and not self._inflight:
                    return
                self._reap_dead_workers()
                last_reap = time.monotonic()
            # reap on a clock too: a steady response stream from live
            # workers must not starve detection of a dead sibling.
            elif time.monotonic() - last_reap >= 0.25:
                self._reap_dead_workers()
                last_reap = time.monotonic()

    def _dispatch(self, response) -> None:
        """Route one worker response to its future / stats slot."""
        worker_id, kind, request_id, *payload = response
        # every response doubles as a heartbeat and as breaker evidence:
        # even a worker-side *solve* error proves the process and its event
        # loop are healthy, so only infrastructure failures (deaths, probe
        # timeouts) are allowed to trip the breaker.
        with self._lock:
            self._last_heard[worker_id] = time.monotonic()
        breaker = self._breakers.get(worker_id)
        if breaker is not None:
            breaker.record_success()
        if kind == "result":
            self._settle(request_id, SingleSolveRecord(**payload[0]), None,
                         spans=payload[1] if len(payload) > 1 else None,
                         from_worker=worker_id)
        elif kind == "error":
            name, message = payload[0], payload[1]
            self._settle(request_id, None,
                         _rebuild_exception(name, message),
                         spans=payload[2] if len(payload) > 2 else None,
                         from_worker=worker_id)
        elif kind in ("stats", "drained"):
            self._settle(request_id, payload[0], None, record_latency=False)
        elif kind == "event":
            # a worker-side lifecycle/fault event (already on the shared
            # JSONL file from the worker's own log): fold it into the front
            # end's memory ring so one process holds the cluster timeline.
            self._obs.events.ingest(payload[0])
        elif kind == "shutdown":
            worker = self._workers.get(worker_id)
            if worker is not None:
                worker["final_stats"] = payload[0]

    def _settle(self, request_id, result, error, *,
                record_latency: bool = True, spans=None,
                from_worker: str | None = None) -> None:
        """Resolve one in-flight future and release its queue slot(s).

        Idempotent (the first caller pops the entry; later ones no-op), and
        safe against caller-side ``Future.cancel()`` — a cancelled future
        rejects ``set_result``/``set_exception``, and raising here would kill
        the collector thread, so the slot is released and the settle skipped.
        ``spans`` are worker-recorded span dicts adopted into the request's
        trace before it is finished into the tracer's ring.

        ``from_worker`` names the worker whose response triggered this
        settle.  For a hedged request both copies share one ``request_id``;
        the first response pops the entry (first-wins), releases the
        primary *and* the hedge depth slot together (the loser's late
        answer no-ops here, so it must never also decrement), and a win by
        the hedge replica is counted and stamped on the event log.
        """
        hedge_win = False
        with self._lock:
            entry = self._inflight.pop(request_id, None)
            if entry is None:
                return
            if entry.counts_depth:
                self._depth[entry.worker_id] = max(
                    0, self._depth.get(entry.worker_id, 1) - 1)
                if entry.hedge_worker_id is not None:
                    self._depth[entry.hedge_worker_id] = max(
                        0, self._depth.get(entry.hedge_worker_id, 1) - 1)
                    hedge_win = from_worker == entry.hedge_worker_id
                    if hedge_win:
                        self._hedge_wins += 1
                if error is None:
                    self._completed += 1
                    if (isinstance(result, SingleSolveRecord)
                            and result.degraded):
                        self._degraded += 1
        if hedge_win:
            self._m_hedge_wins.inc()
            self._event("hedge_win", worker_primary=entry.worker_id,
                        worker_hedge=from_worker,
                        trace_id=(None if entry.trace is None
                                  else entry.trace.trace_id))
        if (from_worker is not None and entry.counts_depth
                and error is None):
            # the worker that actually answered (hedge wins move it)
            entry.future.worker_id = from_worker
        degraded = isinstance(result, SingleSolveRecord) and result.degraded
        if entry.counts_depth:
            if error is not None:
                self._m_requests.inc(outcome="error")
            else:
                self._m_requests.inc(
                    outcome="degraded" if degraded else "completed")
        trace = entry.trace
        if trace is not None:
            if spans:
                trace.adopt(spans)
            self._obs.tracer.finish(
                trace,
                status=("error" if error is not None
                        else "degraded" if degraded else "ok"),
                worker=entry.worker_id,
                redispatches=entry.redispatches,
                error=None if error is None else type(error).__name__)
        future = entry.future
        if not future.set_running_or_notify_cancel():
            return  # caller cancelled; the slot above is already released
        if error is not None:
            future.set_exception(error)
        else:
            if record_latency and isinstance(result, SingleSolveRecord):
                self._latency.record(time.monotonic() - entry.started)
            future.set_result(result)
            if isinstance(result, SingleSolveRecord) and not degraded:
                # warm-on-settle: the answering worker's cache has already
                # persisted this synthesis to the store, so replicas can
                # restore it from disk now and failover stays a cache hit.
                self._warm_replicas(entry)

    def _reap_dead_workers(self) -> None:
        """Retire crashed workers: shrink the ring, redispatch their in-flight.

        Consistent hashing makes this the *only* re-sharding step needed —
        the dead worker's arcs fall to its ring successors, every other
        fingerprint keeps its warm owner.  The supervisor (when enabled)
        respawns the worker afterwards and :meth:`HashRing.ensure_worker`
        gives it exactly its old arcs back.
        """
        if self._closing.is_set():
            return
        for worker_id, worker in self._workers.items():
            if worker_id in self._retired or worker["process"].is_alive():
                continue
            if worker_id in self._planned:
                continue  # a deliberate recycle exit, not a crash
            with self._lock:
                self._retired.add(worker_id)
            self._worker_deaths += 1
            self._m_worker_deaths.inc()
            self._event("worker_death", worker=worker_id,
                        incarnation=worker["config"].incarnation,
                        pid=worker["process"].pid,
                        exitcode=worker["process"].exitcode,
                        uptime_s=time.monotonic() - worker["started_at"])
            self._ring.remove_worker(worker_id)
            breaker = self._breakers.get(worker_id)
            if breaker is not None:
                # one death = one failure: only a crash *loop* (threshold
                # consecutive deaths with no response in between) trips the
                # breaker, a single fault heals invisibly.
                breaker.record_failure()
        # Orphan scan over *all* retired owners, every pass — not only at
        # retirement time: a submit racing the retirement may register its
        # entry just after a one-shot scan, and the retired check in submit
        # plus this rescan together guarantee the future settles.
        with self._lock:
            orphaned = [(request_id, entry.worker_id) for request_id, entry
                        in self._inflight.items()
                        if entry.worker_id in self._retired]
            # a *hedge* copy on a dead worker is simply dropped: the
            # primary still answers, so only the corpse's depth slot is
            # released (it must not be re-released at settle).
            for entry in self._inflight.values():
                hedge = entry.hedge_worker_id
                if hedge is not None and hedge in self._retired:
                    entry.hedge_worker_id = None
                    self._depth[hedge] = max(0, self._depth.get(hedge, 1) - 1)
        for request_id, owner in orphaned:
            self._handle_owner_lost(request_id, owner)

    def _handle_owner_lost(self, request_id: int, owner: str) -> None:
        """An in-flight request's owner died (or its queue was swapped).

        Escalation ladder: **promote a live hedge copy** (the duplicate is
        already solving on a replica — zero extra dispatch) → instant
        re-dispatch to the next live replica from the request's own
        pre-provisioned set → ring re-route, while the
        :attr:`max_redispatch` budget lasts → classical in-process solve
        with ``degraded=True`` → typed retriable failure.  Whatever branch
        runs, the future settles — no admitted request is silently dropped.
        Idempotent: the entry may already be settled or moved by a
        concurrent caller, in which case this is a no-op.
        """
        draining = set(self._ring.draining)
        with self._lock:
            entry = self._inflight.get(request_id)
            if entry is None or entry.worker_id != owner:
                return  # settled, or already redispatched elsewhere
            hedge = entry.hedge_worker_id
            if (hedge is not None and hedge not in self._retired
                    and hedge in self._workers):
                # the hedge copy is live on a replica: promote it to
                # primary.  Its depth slot carries over; only the dead
                # owner's slot is released.  No new dispatch needed —
                # failover latency is bounded by the hedge already running.
                self._depth[owner] = max(0, self._depth.get(owner, 1) - 1)
                entry.worker_id = hedge
                entry.hedge_worker_id = None
                self._failovers += 1
                promoted = hedge
            else:
                promoted = None
                redispatchable = (entry.counts_depth
                                  and entry.payload is not None
                                  and entry.redispatches < self.max_redispatch
                                  and not self._closing.is_set())
        if promoted is not None:
            entry.future.worker_id = promoted
            self._m_failovers.inc()
            trace = entry.trace
            self._event("failover", worker_from=owner, worker_to=promoted,
                        reason="hedge_promoted",
                        trace_id=None if trace is None else trace.trace_id)
            if trace is not None:
                trace.add_span("failover", worker_from=owner,
                               worker_to=promoted, reason="hedge_promoted")
            return
        if redispatchable:
            # prefer the request's own replica set (warm by construction)
            # over a fresh ring walk; both exclude the dead owner.
            new_owner = select_replica(
                [r for r in entry.replicas if r != owner],
                breakers=self._breakers, retired=self._retired,
                draining=draining)
            via_replica = new_owner is not None
            if new_owner is None:
                try:
                    new_owner = self._ring.route(entry.fingerprint)
                except WorkerUnavailableError:
                    new_owner = None
            if new_owner is not None:
                with self._lock:
                    # atomic move; quota was paid at admission and the old
                    # slot transfers, so redispatch never re-runs admission
                    # (shedding an *admitted* request would be a silent
                    # drop, the one outcome this path exists to prevent).
                    if self._inflight.get(request_id) is not entry:
                        return
                    self._depth[entry.worker_id] = max(
                        0, self._depth.get(entry.worker_id, 1) - 1)
                    self._depth[new_owner] = self._depth.get(new_owner, 0) + 1
                    entry.worker_id = new_owner
                    entry.redispatches += 1
                    self._redispatched += 1
                    if via_replica:
                        self._failovers += 1
                    self._incarnation_dispatched[new_owner] = (
                        self._incarnation_dispatched.get(new_owner, 0) + 1)
                    requests = self._workers[new_owner]["requests"]
                entry.future.worker_id = new_owner
                self._m_redispatched.inc()
                trace = entry.trace
                if via_replica:
                    self._m_failovers.inc()
                    self._event("failover", worker_from=owner,
                                worker_to=new_owner,
                                reason="replica_redispatch",
                                trace_id=(None if trace is None
                                          else trace.trace_id))
                self._event("redispatch", worker_from=owner,
                            worker_to=new_owner, hop=entry.redispatches,
                            trace_id=(None if trace is None
                                      else trace.trace_id))
                if trace is not None:
                    trace.add_span("redispatch", worker_from=owner,
                                   worker_to=new_owner,
                                   hop=entry.redispatches)
                    # re-stamp enqueued_at: the new owner's queue_wait span
                    # must measure *its* queue, not the dead worker's.
                    entry.params["trace"] = trace.to_wire()
                message = (MSG_SOLVE, request_id, entry.payload, entry.rhs,
                           entry.params)
                try:
                    requests.put(message)
                except (ValueError, OSError):
                    self._handle_owner_lost(request_id, new_owner)
                    return
                with self._lock:
                    lost = (new_owner in self._retired
                            or self._workers[new_owner]["requests"]
                            is not requests)
                if lost:  # bounded by the redispatch budget
                    self._handle_owner_lost(request_id, new_owner)
                return
        if (self.degraded_fallback and entry.counts_depth
                and entry.matrix is not None and entry.rhs is not None):
            # solve classically off-thread: this path runs on the collector
            # / supervisor threads, which must keep servicing the fleet.
            matrix, rhs = entry.matrix, entry.rhs
            self._event("degraded_fallback", worker=owner,
                        reason="owner_lost", hops=entry.redispatches,
                        trace_id=(None if entry.trace is None
                                  else entry.trace.trace_id))

            def degrade() -> None:
                started = time.monotonic()
                try:
                    record = _degraded_record(matrix, rhs)
                except Exception as exc:  # noqa: BLE001 - settle, not raise
                    self._settle(request_id, None, exc)
                else:
                    if entry.trace is not None:
                        entry.trace.add_span(
                            "degraded", start=started,
                            duration=time.monotonic() - started,
                            reason="owner_lost")
                    self._settle(request_id, record, None)
            threading.Thread(target=degrade, name="repro-degraded-solve",
                             daemon=True).start()
            return
        self._settle(request_id, None, WorkerUnavailableError(
            f"worker {owner!r} died with the request in flight; "
            "its fingerprints now route to the surviving workers"))

    def _degraded_future(self, matrix, rhs, trace=None,
                         reason: str = "") -> Future:
        """Already-settled future answered by the classical fallback."""
        future: Future = Future()
        future.worker_id = None
        if trace is not None:
            future.trace_id = trace.trace_id
        self._event("degraded_fallback", reason=reason,
                    trace_id=None if trace is None else trace.trace_id)
        started = time.monotonic()
        try:
            record = _degraded_record(matrix, rhs)
        except Exception as exc:  # noqa: BLE001 - the future carries it
            with self._lock:
                self._submitted += 1
            self._m_requests.inc(outcome="error")
            if trace is not None:
                self._obs.tracer.finish(trace, status="error",
                                        error=type(exc).__name__)
            future.set_exception(exc)
            return future
        with self._lock:
            self._submitted += 1
            self._completed += 1
            self._degraded += 1
        self._m_requests.inc(outcome="degraded")
        self._latency.record(time.monotonic() - started)
        if trace is not None:
            trace.add_span("degraded", start=started,
                           duration=time.monotonic() - started,
                           reason=reason)
            self._obs.tracer.finish(trace, status="degraded", worker=None)
        future.set_result(record)
        return future

    # ------------------------------------------------------------------ #
    # supervision mechanics (policy lives in resilience.Supervisor)
    # ------------------------------------------------------------------ #
    def _respawn_worker(self, worker_id: str) -> bool:
        """Start a fresh incarnation of a retired worker and re-ring it.

        The new process keeps the worker id and the node-local store
        directory, so it warm-restores compiled-solver state from disk
        (store hits, not recompiles) and its virtual nodes land on exactly
        the arcs it owned before — the ring re-converges to the pre-death
        placement.  The breaker is deliberately *not* reset: a respawn is
        hope, not evidence, and the first real response closes it.
        """
        if self._closing.is_set():
            return False
        worker = self._workers.get(worker_id)
        if worker is None or worker["process"].is_alive():
            return False
        config = dataclasses.replace(
            worker["config"], incarnation=worker["config"].incarnation + 1)
        requests = self._context.Queue()
        # fresh response queue as well: the dead incarnation may have left a
        # truncated frame (or a held feeder lock) in its old pipe, and the
        # new process must never inherit either.
        responses = self._context.Queue()
        process = self._context.Process(
            target=worker_main, args=(config, requests, responses),
            name=f"repro-serving-{worker_id}", daemon=True)
        process.start()
        now = time.monotonic()
        with self._lock:
            old_requests = worker["requests"]
            worker.update({"config": config, "requests": requests,
                           "responses": responses,
                           "process": process, "final_stats": None,
                           "started_at": now})
            self._retired.discard(worker_id)
            self._restarts[worker_id] = self._restarts.get(worker_id, 0) + 1
            self._incarnation_dispatched[worker_id] = 0
            self._last_heard[worker_id] = now
        self._ring.ensure_worker(worker_id)
        self._m_restarts.inc()
        self._event("worker_respawn", worker=worker_id,
                    incarnation=config.incarnation, pid=process.pid,
                    restarts=self._restarts.get(worker_id, 0))
        try:
            old_requests.close()
        except (ValueError, OSError):  # pragma: no cover - already torn down
            pass
        return True

    def _probe_worker(self, worker_id: str,
                      timeout: float | None = None) -> bool:
        """Liveness probe: does a stats round-trip complete in ``timeout``?

        Used by the supervisor to distinguish *hung* (event loop wedged —
        no answer ever) from *busy* (sweeps run in executor threads, so the
        loop answers stats promptly even under load).  ``timeout=None``
        uses the engine-level :attr:`probe_timeout` — one knob governs
        every hang-detection probe.
        """
        if timeout is None:
            timeout = self.probe_timeout
        worker = self._workers.get(worker_id)
        if worker is None:
            return False
        future: Future = Future()
        request_id = next(self._request_ids)
        with self._lock:
            if worker_id in self._retired:
                return False
            requests = worker["requests"]
            self._inflight[request_id] = _Inflight(
                future=future, worker_id=worker_id,
                started=time.monotonic(), counts_depth=False)
        try:
            requests.put((MSG_STATS, request_id))
        except (ValueError, OSError):
            self._settle(request_id, None, None, record_latency=False)
            return False
        try:
            future.result(timeout=timeout)
            return True
        except Exception:  # noqa: BLE001 - timeout or torn-down future
            self._settle(request_id, None, None, record_latency=False)
            return False

    # ------------------------------------------------------------------ #
    # zero-downtime operations
    # ------------------------------------------------------------------ #
    def drain(self, worker_id: str, timeout: float = 30.0) -> bool:
        """Hand a worker's traffic to its replicas; wait for in-flight work.

        Marks the worker draining on the ring (admission stops routing it
        new primaries instantly — its arcs stay in place so
        :meth:`undrain` restores the exact pre-drain split), then runs the
        drain handshake: the worker finishes everything already enqueued
        and acks, and the front end waits for its depth accounting to
        reach zero.  Returns ``True`` when the worker is fully quiesced
        within ``timeout``; the worker keeps running either way — drain is
        a routing state, not a shutdown.
        """
        if worker_id not in self._workers:
            raise ValueError(f"unknown worker {worker_id!r}")
        self._ring.set_draining(worker_id, True)
        self._event("worker_drain", worker=worker_id)
        with self._lock:
            already_dead = worker_id in self._retired
            requests = self._workers[worker_id]["requests"]
        if already_dead:
            # nothing can be in flight inside a dead process; the reaper
            # already moved (or will move) its orphans to replicas.
            self._event("worker_drain_complete", worker=worker_id,
                        dead=True)
            return True
        future: Future = Future()
        request_id = next(self._request_ids)
        with self._lock:
            self._inflight[request_id] = _Inflight(
                future=future, worker_id=worker_id,
                started=time.monotonic(), counts_depth=False)
        try:
            requests.put((MSG_DRAIN, request_id))
        except (ValueError, OSError):
            self._settle(request_id, None, None, record_latency=False)
            return False
        deadline = time.monotonic() + timeout
        try:
            future.result(timeout=timeout)
        except Exception:  # noqa: BLE001 - timeout / died mid-drain
            self._settle(request_id, None, None, record_latency=False)
            return False
        # the worker's pending set is empty; now wait for the front end's
        # own accounting to settle (responses may still be in the pipe).
        while time.monotonic() < deadline:
            with self._lock:
                quiesced = self._depth.get(worker_id, 0) <= 0
            if quiesced:
                self._event("worker_drain_complete", worker=worker_id)
                return True
            time.sleep(0.005)
        return False

    def undrain(self, worker_id: str) -> bool:
        """Return a drained worker to normal routing; ``True`` = changed."""
        changed = self._ring.set_draining(worker_id, False)
        if changed:
            self._event("worker_undrain", worker=worker_id)
        return changed

    def recycle_worker(self, worker_id: str, timeout: float = 30.0) -> bool:
        """Planned zero-downtime restart of one worker: drain → respawn.

        Distinct from crash healing: the worker is drained first (replicas
        own its traffic, in-flight work completes), the deliberate exit is
        hidden from the reaper/supervisor death paths (no ``worker_death``
        event, no breaker failure, no crash-backoff), and the fresh
        incarnation warm-restores from the tiered store before the worker
        is undrained back into rotation.
        """
        if self._closing.is_set():
            return False
        with self._lock:
            if worker_id in self._planned or worker_id not in self._workers:
                return False
            self._planned.add(worker_id)
        try:
            drained = self.drain(worker_id, timeout=timeout)
            worker = self._workers[worker_id]
            process = worker["process"]
            if process.is_alive():
                try:
                    worker["requests"].put((MSG_SHUTDOWN,))
                except (ValueError, OSError):  # pragma: no cover
                    pass
                process.join(max(1.0, timeout / 2))
                if process.is_alive():  # pragma: no cover - wedged worker
                    process.terminate()
                    process.join(1.0)
            with self._lock:
                # retire so racing submits/redispatches see the swap; the
                # reaper skips planned workers, so no death is recorded.
                self._retired.add(worker_id)
            respawned = self._respawn_worker(worker_id)
            self.undrain(worker_id)
            self._event("worker_recycle", worker=worker_id,
                        drained=drained, respawned=respawned)
            return respawned
        finally:
            with self._lock:
                self._planned.discard(worker_id)

    def rolling_restart(self, timeout: float = 30.0) -> dict:
        """Recycle every worker one at a time under live traffic.

        Returns ``{worker_id: recycled_ok}``.  At any instant at most one
        worker is out of rotation, and its fingerprints are served by
        replicas that were warmed through the tiered store — the
        zero-downtime deployment primitive.
        """
        outcomes: dict[str, bool] = {}
        for worker_id in sorted(self._workers):
            if self._closing.is_set():
                break
            outcomes[worker_id] = self.recycle_worker(worker_id,
                                                      timeout=timeout)
        return outcomes

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #
    def worker_stats(self, timeout: float = 5.0) -> dict:
        """Per-worker telemetry snapshots (cache, coalescing, queue depth).

        Stats probes ride the worker request queues but are *control*
        traffic: they never count against the admission ``queue_limit``
        (``counts_depth=False``), so monitoring cannot shed — or be shed by
        — solve load, and a probe that times out releases its in-flight
        entry instead of leaking it on every poll of a wedged worker.
        """
        pending: dict[str, tuple[int, Future]] = {}
        for worker_id, worker in self._workers.items():
            future: Future = Future()
            request_id = next(self._request_ids)
            with self._lock:
                if worker_id in self._retired:
                    continue
                requests = worker["requests"]
                self._inflight[request_id] = _Inflight(
                    future=future, worker_id=worker_id,
                    started=time.monotonic(), counts_depth=False)
            try:
                requests.put((MSG_STATS, request_id))
            except (ValueError, OSError):  # pragma: no cover - queue torn down
                self._settle(request_id, None, None, record_latency=False)
                continue
            pending[worker_id] = (request_id, future)
        snapshots = {}
        for worker_id, (request_id, future) in pending.items():
            try:
                snapshots[worker_id] = future.result(timeout=timeout)
                if isinstance(snapshots[worker_id], dict) \
                        and snapshots[worker_id].get("metrics") is not None:
                    self._metrics_seen[worker_id] = time.monotonic()
            except FutureTimeoutError:
                self._settle(request_id, None, None, record_latency=False)
                snapshots[worker_id] = {"error": "stats probe timed out"}
            except Exception as exc:  # noqa: BLE001
                snapshots[worker_id] = {"error": f"{type(exc).__name__}: {exc}"}
        with self._lock:
            retired = sorted(self._retired)
        for worker_id in retired:
            final = self._workers[worker_id]["final_stats"]
            snapshots[worker_id] = {"retired": True, "final": final}
        return snapshots

    def stats(self, *, include_workers: bool = True) -> dict:
        """Cluster snapshot: ring, admission, latency, depths, workers."""
        with self._lock:
            depths = dict(self._depth)
            submitted = self._submitted
            completed = self._completed
            inflight = len(self._inflight)
            degraded = self._degraded
            redispatched = self._redispatched
            hedged = self._hedged
            hedge_wins = self._hedge_wins
            failovers = self._failovers
            restarts = dict(self._restarts)
            incarnation_dispatched = dict(self._incarnation_dispatched)
        stats = {
            "workers_alive": len(self._ring),
            "worker_deaths": self._worker_deaths,
            "submitted": submitted,
            "completed": completed,
            "inflight": inflight,
            "degraded": degraded,
            "redispatched": redispatched,
            "hedged": hedged,
            "hedge_wins": hedge_wins,
            "failovers": failovers,
            "replication_factor": self.replication_factor,
            "hedge_deadline_s": self.hedge_deadline(),
            "incarnation_dispatched": incarnation_dispatched,
            "restarts": restarts,
            "queue_depths": depths,
            "ring": self._ring.stats(),
            "admission": self._admission.stats(),
            "breakers": {worker_id: breaker.stats()
                         for worker_id, breaker in self._breakers.items()},
            "supervisor": (None if self._supervisor is None
                           else self._supervisor.stats()),
            "latency": self._latency.summary(),
            "shared_memory": (None if self._registry is None
                              else self._registry.stats()),
        }
        stats["obs"] = {"trace": self._obs.tracer.stats(),
                        "events": self._obs.events.stats()}
        if include_workers:
            stats["per_worker"] = self.worker_stats()
            if self._obs.metrics.enabled:
                stats["metrics"] = self.metrics_snapshot(
                    worker_snapshots=stats["per_worker"])
        return stats

    def metrics_snapshot(self, *, worker_snapshots: dict | None = None) -> dict:
        """One cluster-wide mergeable metrics snapshot.

        The front end's own registry is relabelled ``role="frontend"``;
        each worker's snapshot (shipped over the stats-probe path) is
        relabelled with its worker id, then everything folds with
        :func:`~repro.obs.metrics.merge_snapshots` — counters add,
        histograms merge sample windows.  Pass ``worker_snapshots`` to
        reuse an existing :meth:`worker_stats` result instead of probing
        the fleet again.
        """
        snapshots = [relabel_snapshot(self._obs.metrics.snapshot(),
                                      role="frontend")]
        if worker_snapshots is None:
            worker_snapshots = self.worker_stats()
        for worker_id, snap in worker_snapshots.items():
            if isinstance(snap, dict) and isinstance(snap.get("metrics"),
                                                     dict):
                snapshots.append(relabel_snapshot(snap["metrics"],
                                                  worker=worker_id))
        return merge_snapshots(snapshots)

    def prometheus_metrics(self) -> str:
        """Cluster metrics in Prometheus text format 0.0.4 (``GET /metrics``)."""
        self._g_workers_alive.set(float(len(self._ring)))
        with self._lock:
            self._g_inflight.set(float(len(self._inflight)))
        return render_prometheus(self.metrics_snapshot())

    def trace(self, trace_id: str) -> dict | None:
        """Finished span tree for one request id (``GET /trace/<id>``)."""
        return self._obs.tracer.buffer.get(trace_id)

    def healthz(self) -> dict:
        """Liveness payload with observability freshness (``GET /healthz``).

        Deliberately cheap: reads cached state only (no stats probes), so a
        wedged fleet cannot wedge its own health check.
        """
        alive = len(self._ring)
        now = time.monotonic()
        draining = set(self._ring.draining)
        with self._lock:
            restarts = sum(self._restarts.values())
            ages = {worker_id: (None if worker_id not in self._metrics_seen
                                else now - self._metrics_seen[worker_id])
                    for worker_id in self._workers}
            drain_states = {worker_id: worker_id in draining
                            for worker_id in self._workers}
            hedged = self._hedged
            hedge_wins = self._hedge_wins
            failovers = self._failovers
        events = self._obs.events.stats()
        return {"ok": alive > 0 or self.degraded_fallback,
                "workers_alive": alive,
                "worker_deaths": self._worker_deaths,
                "restarts": restarts,
                "uptime_s": now - self._started_at,
                # the rolling-restart watchers: R, who is draining, and the
                # live hedge deadline (None until the histogram warms or
                # when hedging is off).
                "replication_factor": self.replication_factor,
                "draining": drain_states,
                "hedge_deadline_s": self.hedge_deadline(),
                "hedged": hedged,
                "hedge_wins": hedge_wins,
                "failovers": failovers,
                "metrics_snapshot_age_s": ages,
                "event_log": {"lag_s": events["last_event_age_s"],
                              "events": events["events"],
                              "write_errors": events["write_errors"]},
                "tracing": self._obs.tracer.enabled}

    @property
    def workers_alive(self) -> list[str]:
        """Ids of the workers currently on the ring."""
        return self._ring.workers

    def route(self, matrix) -> str:
        """Which live worker owns this matrix's fingerprint (no dispatch)."""
        fingerprint, _ = self._prepare_matrix(matrix)
        return self._ring.route(fingerprint)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self, timeout: float = 5.0) -> None:
        """Drain, stop the workers and release every shared resource."""
        if self._closing.is_set():
            return
        self._closing.set()
        if self._supervisor is not None:
            # _closing wakes its loop; join before shutdown so no respawn
            # races the teardown below.
            self._supervisor.join(timeout=2.0)
        if self._hedger is not None and self._hedger.is_alive():
            self._hedger.join(timeout=1.0)
        for worker_id, worker in self._workers.items():
            if worker_id not in self._retired:
                try:
                    worker["requests"].put((MSG_SHUTDOWN,))
                except (ValueError, OSError):  # pragma: no cover
                    pass
        deadline = time.monotonic() + timeout
        for worker in self._workers.values():
            worker["process"].join(max(0.1, deadline - time.monotonic()))
            if worker["process"].is_alive():
                worker["process"].terminate()
                worker["process"].join(1.0)
        # fail whatever is still unresolved, then let the collector exit.
        with self._lock:
            orphaned = list(self._inflight)
        for request_id in orphaned:
            self._settle(request_id, None,
                         WorkerUnavailableError("cluster engine closed"))
        self._collector.join(timeout=2.0)
        if self._registry is not None:
            self._registry.close()
        self._event("engine_closed",
                    uptime_s=time.monotonic() - self._started_at)
        self._obs.events.close()

    def __enter__(self) -> "ClusterEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ClusterEngine(workers={len(self._ring)}, "
                f"submitted={self._submitted}, deaths={self._worker_deaths})")


def _degraded_record(matrix, rhs) -> SingleSolveRecord:
    """Classical in-process solve shaped like a worker answer.

    The graceful-degradation fallback: exact (``block_encoding_calls == 0``,
    ``polynomial_degree == 0``) but bypassing the quantum pipeline and every
    cache, and flagged ``degraded=True`` so callers can tell.  Structured
    operators use their own ``solve`` (Thomas, fast diagonalisation, CG —
    the same classical reference the benchmarks validate against); dense
    input falls back to LAPACK.
    """
    started = time.monotonic()
    rhs = np.asarray(rhs, dtype=float)
    if is_linear_operator(matrix):
        x = np.asarray(matrix.solve(rhs), dtype=float)
        residual = float(np.linalg.norm(np.asarray(matrix.matvec(x)) - rhs))
    else:
        dense = np.asarray(matrix, dtype=float)
        x = np.linalg.solve(dense, rhs)
        residual = float(np.linalg.norm(dense @ x - rhs))
    scale = float(np.linalg.norm(x))
    direction = x / scale if scale > 0.0 else np.zeros_like(x)
    rhs_norm = float(np.linalg.norm(rhs))
    return SingleSolveRecord(
        x=x, direction=direction, scale=scale,
        scaled_residual=residual / rhs_norm if rhs_norm > 0.0 else residual,
        block_encoding_calls=0, polynomial_degree=0,
        success_probability=1.0, shots=0,
        wall_time=time.monotonic() - started, degraded=True)


def _rebuild_exception(name: str, message: str) -> BaseException:
    """Re-raise a worker-side failure as its own exception type when known.

    Only types defined in :mod:`repro.exceptions` cross the boundary as
    themselves (their constructors accept a plain message); anything else —
    numpy errors, bugs — becomes a ``RuntimeError`` tagged with the original
    type name, preserving per-request fault isolation without trusting
    arbitrary constructors.
    """
    exc_type = getattr(exceptions_module, name, None)
    if (isinstance(exc_type, type) and issubclass(exc_type, ReproError)):
        try:
            return exc_type(message)
        except TypeError:  # pragma: no cover - exotic constructor signature
            pass
    return RuntimeError(f"{name}: {message}")


# ---------------------------------------------------------------------- #
# HTTP front end
# ---------------------------------------------------------------------- #
def _jsonable(value):
    """Recursively convert numpy containers/scalars to JSON-safe values."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


class ServingHTTPServer:
    """Minimal stdlib HTTP/JSON surface over a :class:`ClusterEngine`.

    Endpoints::

        POST /solve    {"matrix": [[...]], "rhs": [...],
                        "epsilon_l"?, "backend"?, "kappa"?,
                        "tenant"?, "deadline"?}
                       → 200 {"x": [...], "scaled_residual": ...,
                              "degraded": false, ...}
                       → 429 admission rejection (Retry-After set when known)
                       → 503 no worker available / breaker open (retriable;
                              Retry-After carries the half-open countdown)
                       → 504 deadline expired
                       → 400 solve-level failure (singular matrix, ...)
        GET  /stats    → 200 cluster stats snapshot
        GET  /healthz  → 200 {"ok": true, "workers_alive": W,
                              "worker_deaths": D, "restarts": R,
                              "uptime_s": ..., "metrics_snapshot_age_s":
                              {...}, "event_log": {"lag_s": ...}}
        GET  /metrics  → 200 Prometheus text format 0.0.4 (cluster-merged)
        GET  /trace    → 200 tracer stats (ring occupancy, slow log)
        GET  /trace/ID → 200 finished span tree for one request / 404

    Rejections are **bodies, not exceptions**: every response carries
    ``{"error", "message", "retriable"}`` so clients can retry on
    ``retriable: true`` without parsing prose.  Bind to port 0 to let the
    OS pick (see :attr:`address`); the server runs on daemon threads and
    stops with :meth:`close`.
    """

    def __init__(self, engine: ClusterEngine, *, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.engine = engine
        handler = _make_handler(engine)
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-serving-http", daemon=True)
        self._thread.start()

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolves here)."""
        return self._server.server_address[:2]

    def close(self) -> None:
        """Stop accepting requests and join the accept loop."""
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=2.0)

    def __enter__(self) -> "ServingHTTPServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _make_handler(engine: ClusterEngine):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *args):  # silence per-request stderr noise
            pass

        def _reply(self, status: int, body: dict,
                   headers: dict | None = None) -> None:
            data = json.dumps(_jsonable(body)).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)

        def _reply_text(self, status: int, text: str,
                        content_type: str) -> None:
            data = text.encode()
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self):
            if self.path == "/healthz":
                self._reply(200, engine.healthz())
            elif self.path == "/stats":
                self._reply(200, engine.stats())
            elif self.path == "/metrics":
                # the version suffix is the Prometheus text-exposition
                # contract; scrapers key parsing off it.
                self._reply_text(200, engine.prometheus_metrics(),
                                 "text/plain; version=0.0.4")
            elif self.path == "/trace" or self.path == "/trace/":
                self._reply(200, engine.observability.tracer.stats())
            elif self.path.startswith("/trace/"):
                trace_id = self.path[len("/trace/"):]
                record = engine.trace(trace_id)
                if record is None:
                    self._reply(404, {"error": "TraceNotFound",
                                      "message": trace_id,
                                      "retriable": False})
                else:
                    self._reply(200, record)
            else:
                self._reply(404, {"error": "NotFound", "message": self.path,
                                  "retriable": False})

        def do_POST(self):
            if self.path != "/solve":
                self._reply(404, {"error": "NotFound", "message": self.path,
                                  "retriable": False})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                request = json.loads(self.rfile.read(length) or b"{}")
                matrix = np.array(request["matrix"], dtype=float)
                rhs = np.array(request["rhs"], dtype=float)
            except (KeyError, ValueError, TypeError, json.JSONDecodeError) as exc:
                self._reply(400, {"error": type(exc).__name__,
                                  "message": str(exc), "retriable": False})
                return
            kwargs = {key: request[key] for key
                      in ("epsilon_l", "backend", "kappa", "tenant", "deadline")
                      if request.get(key) is not None}
            try:
                future = engine.submit(matrix, rhs, **kwargs)
                record = future.result()
            except WorkerUnavailableError as exc:
                # includes CircuitOpenError: the service (not the client) is
                # the problem, so 503 — retriable, the supervisor is healing.
                headers = ({} if exc.retry_after is None
                           else {"Retry-After": f"{exc.retry_after:.3f}"})
                self._reply(503, {"error": type(exc).__name__,
                                  "message": str(exc), "retriable": True},
                            headers)
                return
            except AdmissionError as exc:
                headers = ({} if exc.retry_after is None
                           else {"Retry-After": f"{exc.retry_after:.3f}"})
                self._reply(429, {"error": type(exc).__name__,
                                  "message": str(exc), "retriable": True},
                            headers)
                return
            except SolveTimeoutError as exc:
                self._reply(504, {"error": type(exc).__name__,
                                  "message": str(exc), "retriable": True})
                return
            except ReproError as exc:
                self._reply(400, {"error": type(exc).__name__,
                                  "message": str(exc), "retriable": False})
                return
            except Exception as exc:  # noqa: BLE001 - no 500-by-traceback
                self._reply(500, {"error": type(exc).__name__,
                                  "message": str(exc), "retriable": False})
                return
            self._reply(200, {
                "x": record.x,
                "scaled_residual": record.scaled_residual,
                "scale": record.scale,
                "block_encoding_calls": record.block_encoding_calls,
                "polynomial_degree": record.polynomial_degree,
                "wall_time": record.wall_time,
                "worker": future.worker_id,
                "degraded": record.degraded,
                "trace_id": getattr(future, "trace_id", None),
            })

    return Handler
