"""Sharded multi-worker serving tier over the solve engine.

This package scales the single-process serving stack (compiled-solver
cache → synthesis store → coalescing async engine) across worker
*processes*, with the three classic serving-tier ingredients:

* **routing** — :class:`~repro.serving.router.HashRing` places each matrix
  fingerprint on a consistent-hash ring with virtual nodes, so the same
  matrix always lands on the same live worker (cache heat) and a worker
  death moves only ~1/W of the key space (churn containment);
* **admission control** — :class:`~repro.serving.admission.AdmissionController`
  bounds per-worker queues and enforces per-tenant token-bucket quotas,
  shedding overload *at the front door* with explicit retriable errors
  instead of letting latency grow unboundedly;
* **workers** — :mod:`repro.serving.worker` processes wrap an
  :class:`~repro.engine.aio.AsyncSolveEngine` over a tiered cache hierarchy
  (per-worker LRU → node-local store → shared store directory), coalescing
  same-fingerprint bursts into fused sweeps and widening the coalescing
  window under backpressure;
* **resilience** — :mod:`repro.serving.resilience` closes the fault loop:
  a :class:`~repro.serving.resilience.Supervisor` respawns dead/hung
  workers (warm-restoring from the tiered store) and re-adds them to the
  ring, :class:`~repro.serving.resilience.RetryPolicy` retries retriable
  rejections under decorrelated-jitter backoff,
  :class:`~repro.serving.resilience.CircuitBreaker` sheds traffic for
  workers presumed down, and the deterministic
  :class:`~repro.serving.resilience.ChaosPolicy` harness makes every one
  of those recovery paths reproducibly testable.

:class:`~repro.serving.frontend.ClusterEngine` is the in-process API
(``submit`` / ``solve`` / ``stats``);
:class:`~repro.serving.frontend.ServingHTTPServer` exposes it over
stdlib HTTP/JSON.  ``benchmarks/bench_serving_cluster.py`` measures the
tier under Zipf-distributed traffic, including a 10x overload run;
``benchmarks/bench_chaos.py`` replays a seeded kill schedule against it
and gates on no-silent-drops, post-retry success rate and
recovery-to-full-capacity time.

Examples
--------
>>> from repro.serving import ClusterEngine
>>> with ClusterEngine(num_workers=2) as cluster:
...     record = cluster.solve(A, b, epsilon_l=1e-3)
...     print(cluster.stats(include_workers=False)["latency"]["p99"])
"""

from .admission import AdmissionController, TokenBucket
from .frontend import ClusterEngine, ServingHTTPServer
from .resilience import (
    CHAOS_ENV_VAR,
    ChaosPolicy,
    ChaosSpec,
    CircuitBreaker,
    HedgePolicy,
    RetryPolicy,
    Supervisor,
    select_replica,
)
from .router import DEFAULT_VNODES, HashRing
from .worker import WorkerConfig, worker_main

__all__ = [
    "HashRing",
    "DEFAULT_VNODES",
    "TokenBucket",
    "AdmissionController",
    "WorkerConfig",
    "worker_main",
    "ClusterEngine",
    "ServingHTTPServer",
    "RetryPolicy",
    "CircuitBreaker",
    "HedgePolicy",
    "select_replica",
    "ChaosSpec",
    "ChaosPolicy",
    "Supervisor",
    "CHAOS_ENV_VAR",
]
