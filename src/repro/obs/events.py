"""Structured event log: append-only JSONL of serving-tier lifecycle events.

Metrics say *how much* (counters, percentiles); traces say *where the time
went* for one request; the event log says *what happened to the cluster* —
worker deaths, hangs and respawns (with incarnation), circuit-breaker trips
and half-opens, chaos fault injections, synthesis-store quarantines.  Each
event is one JSON object per line, stamped with a wall-clock timestamp, a
monotonically increasing sequence number, and — when a request observed the
event — the ``trace_id`` that ties it back to a span tree.  A chaos drill
becomes reconstructable post-hoc: the scripted kill, the collector noticing
the death, the redispatch, the respawn with the next incarnation, each a
line in order.

The log is dual-homed:

* an **in-memory ring** (bounded, cheap) that ``/healthz`` and ``stats()``
  read and tests assert against, and
* an optional **JSONL file** (``path=`` or the ``REPRO_EVENT_LOG``
  environment variable) opened append-only and line-buffered, so multiple
  processes — the front end and every worker — can interleave whole lines
  into one timeline (POSIX ``O_APPEND`` semantics keep lines intact).

Workers that are about to die *on purpose* (chaos crash points call
``os._exit``) must call :meth:`EventLog.sync` first: the exit skips every
atexit/flush path, and an unsynced fault event would vanish with the
process — exactly the event the timeline exists to record.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

__all__ = ["EventLog", "EVENT_LOG_ENV_VAR", "LIFECYCLE_KINDS",
           "count_kinds", "default_event_log_path"]

#: environment variable naming the JSONL file shared by all processes.
EVENT_LOG_ENV_VAR = "REPRO_EVENT_LOG"

#: the cluster-lifecycle event vocabulary the serving tier emits.  Chaos
#: drills audit their timelines against these names — adding a kind here is
#: an API change for every consumer of the JSONL file.
LIFECYCLE_KINDS = frozenset({
    "worker_death", "worker_respawn", "worker_hang_kill",
    "worker_drain", "worker_drain_complete", "worker_undrain",
    "worker_recycle",
    "hedge_dispatch", "hedge_win", "failover", "replica_warm",
    "breaker_open", "breaker_half_open", "breaker_reopen", "breaker_close",
    "chaos_fault", "store_quarantine", "degraded_fallback",
})


def count_kinds(records) -> dict:
    """Histogram of ``kind`` over event records — the timeline-audit helper.

    Accepts any iterable of record dicts (a memory ring snapshot or
    :meth:`EventLog.read_file` output); unknown/missing kinds count under
    ``None`` so a malformed timeline is visible rather than silently
    dropped.
    """
    counts: dict = {}
    for record in records:
        kind = record.get("kind") if isinstance(record, dict) else None
        counts[kind] = counts.get(kind, 0) + 1
    return counts


def default_event_log_path(environ=os.environ) -> str | None:
    """Event-log path from ``REPRO_EVENT_LOG`` (``None`` = memory only)."""
    raw = environ.get(EVENT_LOG_ENV_VAR, "").strip()
    if raw.lower() in ("", "0", "off", "false", "no"):
        return None
    return raw


class EventLog:
    """Append-only structured event sink (memory ring + optional JSONL file).

    ``path=None`` consults ``REPRO_EVENT_LOG``; pass ``path=False`` to force
    memory-only operation regardless of the environment.  File writes are
    line-buffered and never raise into the caller — a full disk degrades the
    log to memory-only (counted in ``write_errors``) rather than failing the
    request path that emitted the event.
    """

    def __init__(self, path: "str | None | bool" = None, *,
                 capacity: int = 4096, clock=time.time,
                 source: str = "") -> None:
        if path is None:
            resolved = default_event_log_path()
        elif path is False:
            resolved = None
        else:
            resolved = str(path)
        self.path = resolved
        self.source = source
        self._clock = clock
        self._ring: deque[dict] = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._seq = 0
        self._emitted = 0
        self._write_errors = 0
        self._last_ts: float | None = None
        #: optional ``on_emit(record)`` tap called after each local
        #: :meth:`emit` (outside the lock, errors swallowed) — the worker
        #: uses it to ship its events to the front end's memory ring over
        #: the response queue.
        self.on_emit = None
        self._file = None
        if resolved is not None:
            try:
                directory = os.path.dirname(resolved)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                self._file = open(resolved, "a", buffering=1,
                                  encoding="utf-8")
            except OSError:
                self._write_errors += 1
                self._file = None

    # ------------------------------------------------------------------ #
    # emission
    # ------------------------------------------------------------------ #
    def emit(self, kind: str, *, trace_id: str | None = None,
             **fields) -> dict:
        """Record one event; returns the stamped record.

        ``kind`` is the event type (``worker_death``, ``breaker_open``,
        ``chaos_fault``, ``store_quarantine``, ...); arbitrary keyword
        fields carry the specifics (worker id, incarnation, fault kind).
        """
        record = dict(fields)
        record["kind"] = str(kind)
        if trace_id is not None:
            record["trace_id"] = trace_id
        if self.source and "source" not in record:
            record["source"] = self.source
        record["ts"] = self._clock()
        with self._lock:
            self._seq += 1
            self._emitted += 1
            record["seq"] = self._seq
            self._ring.append(record)
            self._last_ts = record["ts"]
            if self._file is not None:
                try:
                    self._file.write(
                        json.dumps(record, default=str, sort_keys=True)
                        + "\n")
                except (OSError, ValueError):
                    self._write_errors += 1
        tap = self.on_emit
        if tap is not None:
            try:
                tap(record)
            except Exception:  # noqa: BLE001 - telemetry must not raise
                pass
        return record

    def ingest(self, record: dict) -> dict | None:
        """Fold an event produced by *another* process into the memory ring.

        Workers append their own events to the shared file directly (their
        line already carries a ``seq`` from their log); this keeps the front
        end's in-memory view cluster-wide without writing the line twice.
        """
        if not isinstance(record, dict) or "kind" not in record:
            return None
        record = dict(record)
        with self._lock:
            self._ring.append(record)
            self._emitted += 1
            ts = record.get("ts")
            if isinstance(ts, (int, float)):
                self._last_ts = max(self._last_ts or 0.0, float(ts))
        return record

    def sync(self) -> None:
        """Flush + fsync the file — call before a deliberate hard exit."""
        with self._lock:
            if self._file is None:
                return
            try:
                self._file.flush()
                os.fsync(self._file.fileno())
            except (OSError, ValueError):
                self._write_errors += 1

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    self._write_errors += 1
                self._file = None

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def events(self, kind: str | None = None,
               limit: int | None = None) -> list[dict]:
        """Events from the memory ring, oldest first, optionally filtered."""
        with self._lock:
            records = list(self._ring)
        if kind is not None:
            records = [record for record in records
                       if record.get("kind") == kind]
        if limit is not None:
            records = records[-int(limit):]
        return records

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def stats(self) -> dict:
        """Telemetry for ``/healthz``: volume, destination, lag, errors."""
        with self._lock:
            last_age = (None if self._last_ts is None
                        else max(0.0, self._clock() - self._last_ts))
            return {"events": self._emitted, "buffered": len(self._ring),
                    "path": self.path, "last_event_age_s": last_age,
                    "write_errors": self._write_errors}

    # ------------------------------------------------------------------ #
    @staticmethod
    def read_file(path: str) -> list[dict]:
        """Parse a JSONL event file (skipping torn/corrupt lines)."""
        records: list[dict] = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if isinstance(record, dict):
                        records.append(record)
        except OSError:
            return records
        return records

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"EventLog(path={self.path!r}, buffered={len(self)}, "
                f"emitted={self._emitted})")
