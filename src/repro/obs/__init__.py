"""repro.obs — observability layer: metrics, request tracing, event log.

Three coordinated pillars, one per module:

* :mod:`repro.obs.metrics` — process-local Counter/Gauge/Histogram
  primitives with labels and a mergeable snapshot format; workers ship
  snapshots over the stats-probe path and the front end folds them into
  one cluster-wide view, rendered as Prometheus text on ``GET /metrics``.
* :mod:`repro.obs.trace` — per-request span trees with deterministic
  sampling, propagated across threads (contextvars), processes (wire
  dicts in the queue tuples) and coalesced batches (shared sweep spans);
  completed traces live in a ring served by ``GET /trace/<id>``.
* :mod:`repro.obs.events` — append-only JSONL of cluster lifecycle events
  (deaths, respawns, breaker trips, chaos faults, store quarantines),
  each stamped with the trace that observed it.

:class:`Observability` bundles the three so call sites thread one handle
instead of three, with environment-driven defaults (``REPRO_METRICS``,
``REPRO_TRACE``, ``REPRO_EVENT_LOG``).
"""

from __future__ import annotations

from .events import EVENT_LOG_ENV_VAR, EventLog, default_event_log_path
from .metrics import (METRICS_ENV_VAR, Counter, Gauge, Histogram,
                      MetricsRegistry, merge_snapshots, metrics_enabled,
                      relabel_snapshot, render_prometheus)
from .trace import (TRACE_ENV_VAR, Span, TraceBuffer, TraceContext, Tracer,
                    activated, current_trace, default_sample_rate, span,
                    trace_is_sampled)

__all__ = [
    "Observability",
    # metrics
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "merge_snapshots",
    "relabel_snapshot", "render_prometheus", "metrics_enabled",
    "METRICS_ENV_VAR",
    # trace
    "Tracer", "TraceContext", "TraceBuffer", "Span", "span", "activated",
    "current_trace", "trace_is_sampled", "default_sample_rate",
    "TRACE_ENV_VAR",
    # events
    "EventLog", "default_event_log_path", "EVENT_LOG_ENV_VAR",
]


class Observability:
    """One handle bundling a metrics registry, a tracer and an event log.

    Every component is optional at construction and defaults to an
    environment-configured instance, so ``Observability()`` is always safe
    and ``Observability(tracer=Tracer(sample_rate=1.0))`` overrides just
    the piece a test or benchmark cares about.
    """

    __slots__ = ("metrics", "tracer", "events")

    def __init__(self, *, metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 events: EventLog | None = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.events = events if events is not None else EventLog()

    def stats(self) -> dict:
        return {"metrics": len(self.metrics), "trace": self.tracer.stats(),
                "events": self.events.stats()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Observability(metrics={len(self.metrics)}, "
                f"tracer={self.tracer!r}, events={self.events!r})")
