"""Request tracing: trace contexts, spans, deterministic sampling, ring buffer.

One request through the serving tier crosses a thread (submit), a process
boundary (the worker queue), an event loop (the coalescing engine), an
executor thread (the fused sweep) and possibly *another* worker (redispatch
after a death).  A :class:`TraceContext` is the thing that survives all of
those hops: a ``trace_id`` plus an append-only list of :class:`Span` records
(name, start, duration, parent, attributes) from which the span tree of the
request — route, admit, queue-wait, coalesce, sweep, per-refinement
iteration, redispatch hops, degraded fallback — is reconstructed.

Design decisions:

* **contextvar propagation in-process** — :func:`activated` installs a trace
  as the ambient context and :func:`span` (the instrumentation primitive
  used by the core solver and refinement driver) attaches to whatever trace
  is ambient, or no-ops when none is.  Instrumented code never imports the
  serving tier and costs one contextvar read when tracing is off.
* **wire propagation across processes** — :meth:`TraceContext.to_wire`
  yields a small picklable dict carried inside the worker request tuple;
  the worker rebuilds the context with :meth:`TraceContext.from_wire`,
  records its spans locally, and ships them back attached to the response
  (:meth:`TraceContext.export_spans` → :meth:`TraceContext.adopt`).
* **deterministic sampling** — whether a trace records spans is a pure
  function of its ``trace_id`` and the sample rate
  (:func:`trace_is_sampled`): the *same* decision falls out on every
  process that sees the id, with no coordination.  The rate comes from the
  ``REPRO_TRACE`` environment variable (``0``..``1``; ``on`` = 1.0) or the
  ``trace_sample_rate`` engine parameter.
* **shared spans** — a coalesced sweep answers N requests with one batched
  solve.  The engine records that work once into a collector context and
  every member trace :meth:`adopts <TraceContext.adopt>` the same span
  dicts: N span trees, one shared ``span_id``, no double-counted work.

Completed traces land in a :class:`TraceBuffer` — a bounded in-memory ring
served by ``GET /trace/<id>`` — which also keeps a slow-request log of
traces whose total duration exceeded its threshold.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import itertools
import os
import threading
import time
import uuid
from collections import OrderedDict, deque

__all__ = ["Span", "TraceContext", "TraceBuffer", "Tracer", "current_trace",
           "activated", "span", "trace_is_sampled", "default_sample_rate",
           "TRACE_ENV_VAR"]

#: environment variable carrying the default sample rate (0..1, or on/off).
TRACE_ENV_VAR = "REPRO_TRACE"

#: ambient trace for the running thread/task (asyncio tasks inherit a copy).
_current: contextvars.ContextVar["TraceContext | None"] = contextvars.ContextVar(
    "repro_trace", default=None)


def default_sample_rate(environ=os.environ) -> float:
    """Sample rate from ``REPRO_TRACE``: a float in [0, 1]; ``on``/``1`` = 1.0;
    unset, ``0`` or ``off`` = 0.0 (tracing disabled)."""
    raw = environ.get(TRACE_ENV_VAR, "").strip().lower()
    if raw in ("", "0", "off", "false", "no"):
        return 0.0
    if raw in ("1", "on", "true", "yes"):
        return 1.0
    try:
        rate = float(raw)
    except ValueError:
        return 0.0
    return min(1.0, max(0.0, rate))


def trace_is_sampled(trace_id: str, rate: float) -> bool:
    """Deterministic sampling decision: pure in ``(trace_id, rate)``.

    Hashes the id so every process that sees a trace agrees on whether it
    records spans, without any negotiation on the wire.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    digest = hashlib.sha256(trace_id.encode()).digest()
    return int.from_bytes(digest[:8], "big") < rate * 2.0**64


class Span(dict):
    """One timed operation inside a trace; a plain dict for free pickling.

    Keys: ``span_id``, ``parent_id`` (``None`` for roots), ``name``,
    ``start`` (monotonic stamp), ``duration`` (seconds; ``None`` while
    open) and ``attrs``.
    """

    @property
    def span_id(self) -> str:
        return self["span_id"]

    @property
    def name(self) -> str:
        return self["name"]

    @property
    def duration(self) -> float | None:
        return self["duration"]


class TraceContext:
    """Per-request trace: an id, a sampled flag and the recorded spans.

    An *unsampled* context still exists (its ``trace_id`` correlates event-log
    entries) but records nothing: every span call is a cheap flag check.
    Thread-safe — the front-end collector, the worker event loop and the
    sweep executor all append concurrently.
    """

    __slots__ = ("trace_id", "sampled", "origin", "created_at", "_spans",
                 "_stack", "_ids", "_lock")

    def __init__(self, trace_id: str | None = None, *, sampled: bool = True,
                 origin: str = "") -> None:
        self.trace_id = trace_id if trace_id is not None else uuid.uuid4().hex
        self.sampled = bool(sampled)
        self.origin = origin
        self.created_at = time.monotonic()
        self._spans: list[Span] = []
        self._stack: list[str] = []
        self._ids = itertools.count()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def _next_id(self) -> str:
        return f"{self.trace_id[:8]}-{self.origin or 'fe'}-{next(self._ids)}"

    @contextlib.contextmanager
    def span(self, name: str, **attrs):
        """Record one timed operation; nests under the enclosing span."""
        if not self.sampled:
            yield None
            return
        start = time.monotonic()
        with self._lock:
            span = Span(span_id=self._next_id(),
                        parent_id=self._stack[-1] if self._stack else None,
                        name=str(name), start=start, duration=None,
                        attrs=dict(attrs))
            self._spans.append(span)
            self._stack.append(span["span_id"])
        try:
            yield span
        finally:
            span["duration"] = time.monotonic() - start
            with self._lock:
                # remove by value: concurrent spans may interleave exits.
                if span["span_id"] in self._stack:
                    self._stack.remove(span["span_id"])

    def add_span(self, name: str, *, start: float | None = None,
                 duration: float = 0.0, parent_id: str | None = None,
                 **attrs) -> Span | None:
        """Record an already-measured operation (e.g. queue-wait)."""
        if not self.sampled:
            return None
        span = Span(span_id=self._next_id(), parent_id=parent_id,
                    name=str(name),
                    start=time.monotonic() if start is None else float(start),
                    duration=float(duration), attrs=dict(attrs))
        with self._lock:
            self._spans.append(span)
        return span

    def adopt(self, spans) -> None:
        """Attach externally recorded spans (worker-side, shared sweeps).

        The span dicts are adopted *by reference*: a sweep span shared by N
        coalesced requests is one object appearing in N traces, identical
        ``span_id`` included.
        """
        if not self.sampled or not spans:
            return
        with self._lock:
            self._spans.extend(Span(span) if not isinstance(span, Span)
                               else span for span in spans)

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    @property
    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def export_spans(self) -> list[dict]:
        """Picklable copies of the recorded spans (for the response wire)."""
        with self._lock:
            return [dict(span) for span in self._spans]

    def to_wire(self) -> dict:
        """Minimal propagation payload for the worker request tuple."""
        return {"trace_id": self.trace_id, "sampled": self.sampled,
                "enqueued_at": time.monotonic()}

    @classmethod
    def from_wire(cls, wire: dict | None, *,
                  origin: str = "") -> "TraceContext | None":
        if not wire:
            return None
        return cls(wire["trace_id"], sampled=wire.get("sampled", False),
                   origin=origin)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TraceContext({self.trace_id[:8]}, sampled={self.sampled}, "
                f"spans={len(self._spans)})")


# ---------------------------------------------------------------------- #
# ambient-context helpers (the instrumentation surface for core code)
# ---------------------------------------------------------------------- #
def current_trace() -> TraceContext | None:
    """The ambient trace of this thread/task (``None`` outside any)."""
    return _current.get()


@contextlib.contextmanager
def activated(trace: TraceContext | None):
    """Install ``trace`` as the ambient context for the ``with`` body."""
    token = _current.set(trace)
    try:
        yield trace
    finally:
        _current.reset(token)


@contextlib.contextmanager
def span(name: str, **attrs):
    """Span on the ambient trace; a no-op (one contextvar read) without one.

    This is what the core solver and refinement loop call — they never know
    whether a serving tier, a benchmark or nothing at all is tracing them.
    """
    trace = _current.get()
    if trace is None or not trace.sampled:
        yield None
        return
    with trace.span(name, **attrs) as entry:
        yield entry


# ---------------------------------------------------------------------- #
# completed-trace storage
# ---------------------------------------------------------------------- #
class TraceBuffer:
    """Bounded in-memory ring of completed traces + a slow-request log.

    ``capacity`` bounds memory; a finished trace evicts the oldest.  A trace
    whose total duration exceeds ``slow_threshold`` seconds is additionally
    remembered in the slow log (its own small ring), which survives eviction
    from the main ring — tail latencies outlive the traffic that caused them.
    """

    def __init__(self, *, capacity: int = 512, slow_threshold: float = 1.0,
                 slow_capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.slow_threshold = float(slow_threshold)
        self._traces: OrderedDict[str, dict] = OrderedDict()
        self._slow: deque[dict] = deque(maxlen=int(slow_capacity))
        self._lock = threading.Lock()
        self._finished = 0
        self._evicted = 0

    # ------------------------------------------------------------------ #
    def finish(self, trace: TraceContext, *, status: str = "ok",
               **attrs) -> dict | None:
        """Seal a trace into the ring; returns the stored record.

        Unsampled traces are dropped (their spans were never recorded).
        """
        if trace is None or not trace.sampled:
            return None
        duration = time.monotonic() - trace.created_at
        record = {"trace_id": trace.trace_id, "status": str(status),
                  "duration": duration, "attrs": dict(attrs),
                  "spans": trace.export_spans()}
        with self._lock:
            self._finished += 1
            self._traces[trace.trace_id] = record
            self._traces.move_to_end(trace.trace_id)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)
                self._evicted += 1
            if duration > self.slow_threshold:
                self._slow.append({"trace_id": trace.trace_id,
                                   "duration": duration,
                                   "status": record["status"],
                                   "spans": len(record["spans"])})
        return record

    def get(self, trace_id: str) -> dict | None:
        with self._lock:
            return self._traces.get(trace_id)

    def trace_ids(self) -> list[str]:
        with self._lock:
            return list(self._traces)

    def slow(self) -> list[dict]:
        """Slow-request log, oldest first."""
        with self._lock:
            return list(self._slow)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def stats(self) -> dict:
        with self._lock:
            return {"finished": self._finished, "stored": len(self._traces),
                    "evicted": self._evicted, "slow": len(self._slow),
                    "capacity": self.capacity,
                    "slow_threshold": self.slow_threshold}


class Tracer:
    """Sampling policy + buffer: the front end's handle on tracing.

    ``sample_rate=None`` reads ``REPRO_TRACE``; rate 0 makes :meth:`start`
    return ``None`` so the request path skips every trace touch — the
    zero-overhead contract the benchmarks gate.
    """

    def __init__(self, *, sample_rate: float | None = None,
                 capacity: int = 512, slow_threshold: float = 1.0) -> None:
        self.sample_rate = (default_sample_rate() if sample_rate is None
                            else min(1.0, max(0.0, float(sample_rate))))
        self.buffer = TraceBuffer(capacity=capacity,
                                  slow_threshold=slow_threshold)

    @property
    def enabled(self) -> bool:
        return self.sample_rate > 0.0

    def start(self, *, origin: str = "") -> TraceContext | None:
        """New per-request context, or ``None`` when tracing is off.

        With ``0 < rate < 1`` every request still gets a context (its id
        stamps event-log entries) but only the deterministic
        :func:`trace_is_sampled` fraction records spans.
        """
        if not self.enabled:
            return None
        trace_id = uuid.uuid4().hex
        return TraceContext(trace_id,
                            sampled=trace_is_sampled(trace_id,
                                                     self.sample_rate),
                            origin=origin)

    def finish(self, trace: TraceContext | None, *, status: str = "ok",
               **attrs) -> dict | None:
        if trace is None:
            return None
        return self.buffer.finish(trace, status=status, **attrs)

    def stats(self) -> dict:
        stats = self.buffer.stats()
        stats["sample_rate"] = self.sample_rate
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(sample_rate={self.sample_rate}, buffer={len(self.buffer)})"
