"""Process-local metrics registry with mergeable snapshots.

The serving stack's telemetry predates this module as a patchwork of ad-hoc
dict counters (``stats()`` methods on the cache, store, admission controller,
engine, front end and workers).  Those dicts stay — their keys are API — but
they stop being the *only* representation: every layer now also records into
a :class:`MetricsRegistry` of typed primitives,

* :class:`Counter` — monotonically increasing totals (requests, sheds,
  deaths, cache hits);
* :class:`Gauge` — instantaneous values (queue depth, live workers,
  coalescing window);
* :class:`Histogram` — duration distributions, backed by
  :class:`~repro.utils.timing.LatencyHistogram` so percentiles merge across
  processes.

Each metric supports **labels** (``counter.inc(outcome="ok")``), giving one
metric family many series.  The payoff over bare dicts is the **snapshot
format**: :meth:`MetricsRegistry.snapshot` emits a picklable/JSON-able dict
that workers ship to the front end over the existing stats-probe path, and
:func:`merge_snapshots` folds any number of those into one cluster view —
counters add, gauges add (ship them pre-labelled per worker via
:func:`relabel_snapshot` when summing is wrong), histograms merge their
sample windows so the cluster p99 is computed from *all* samples rather
than averaged per-worker percentiles.

:func:`render_prometheus` serialises a snapshot into the Prometheus text
exposition format (``text/plain; version=0.0.4``) for ``GET /metrics`` on
:class:`~repro.serving.frontend.ServingHTTPServer`; histograms render as
summaries (``quantile="0.5|0.9|0.99"`` plus ``_count``/``_sum``).

Set ``REPRO_METRICS=0`` (or ``off``/``false``) to disable recording — every
primitive becomes a no-op while keeping its API, so instrumented hot paths
cost one attribute check.
"""

from __future__ import annotations

import os
import re
import threading

from ..utils import LatencyHistogram

__all__ = ["MetricsRegistry", "Counter", "Gauge", "Histogram",
           "merge_snapshots", "relabel_snapshot", "render_prometheus",
           "metrics_enabled", "METRICS_ENV_VAR"]

#: environment variable gating metric recording ("0"/"off"/"false" = off).
METRICS_ENV_VAR = "REPRO_METRICS"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def metrics_enabled(environ=os.environ) -> bool:
    """Whether the ``REPRO_METRICS`` knob leaves recording on (the default)."""
    return environ.get(METRICS_ENV_VAR, "").strip().lower() not in (
        "0", "off", "false", "no")


def _label_key(labels: dict) -> tuple:
    """Canonical, hashable form of one series' label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared plumbing: one named family holding labelled series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", *, enabled: bool = True):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.enabled = enabled
        self._lock = threading.Lock()
        self._series: dict[tuple, object] = {}

    def _validate_labels(self, labels: dict) -> None:
        for key in labels:
            if not _LABEL_RE.match(str(key)):
                raise ValueError(f"invalid label name {key!r}")

    def series(self) -> dict:
        """``{label_key: value}`` snapshot of every live series."""
        with self._lock:
            return dict(self._series)

    def snapshot(self) -> dict:
        return {"type": self.kind, "help": self.help,
                "series": {key: self._export(value)
                           for key, value in self.series().items()}}

    @staticmethod
    def _export(value):
        return value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r}, series={len(self._series)})"


class Counter(_Metric):
    """Monotonically increasing total, optionally labelled.

    Examples
    --------
    >>> requests = registry.counter("requests_total", "requests seen")
    >>> requests.inc(outcome="ok")
    >>> requests.value(outcome="ok")
    1.0
    """

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not self.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self._validate_labels(labels)
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(amount)

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def total(self) -> float:
        """Sum over every labelled series of this family."""
        with self._lock:
            return float(sum(self._series.values()))


class Gauge(_Metric):
    """Instantaneous value that can move both ways."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        if not self.enabled:
            return
        self._validate_labels(labels)
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not self.enabled:
            return
        self._validate_labels(labels)
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(amount)

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))


class Histogram(_Metric):
    """Duration distribution; one :class:`LatencyHistogram` per series.

    ``observe`` records seconds; a series' snapshot is the underlying
    histogram's :meth:`~repro.utils.timing.LatencyHistogram.state`, which is
    exactly the payload :func:`merge_snapshots` folds across workers.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", *, enabled: bool = True,
                 window: int = 2048):
        super().__init__(name, help, enabled=enabled)
        self.window = int(window)

    def observe(self, seconds: float, **labels) -> None:
        if not self.enabled:
            return
        self.labelled(**labels).record(seconds)

    def labelled(self, **labels) -> LatencyHistogram:
        """The underlying per-series histogram (created on first use)."""
        self._validate_labels(labels)
        key = _label_key(labels)
        with self._lock:
            histogram = self._series.get(key)
            if histogram is None:
                histogram = LatencyHistogram(window=self.window)
                self._series[key] = histogram
            return histogram

    def summary(self, **labels) -> dict:
        return self.labelled(**labels).summary()

    @staticmethod
    def _export(value):
        return value.state()


class MetricsRegistry:
    """Named collection of metric families with one mergeable snapshot.

    Parameters
    ----------
    namespace:
        Prefix prepended (``<namespace>_``) to every metric name, keeping
        worker- and cluster-level registries collision-free in one scrape.
    enabled:
        ``False`` turns every primitive into a no-op; ``None`` (default)
        reads the ``REPRO_METRICS`` environment knob.

    Re-requesting a name returns the existing family (so modules can declare
    their metrics idempotently); re-requesting it as a *different* type is a
    bug and raises.
    """

    def __init__(self, *, namespace: str = "repro",
                 enabled: bool | None = None) -> None:
        self.namespace = namespace
        self.enabled = metrics_enabled() if enabled is None else bool(enabled)
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # ------------------------------------------------------------------ #
    def _register(self, cls, name: str, help: str, **kwargs):
        full = f"{self.namespace}_{name}" if self.namespace else name
        with self._lock:
            metric = self._metrics.get(full)
            if metric is not None:
                if not isinstance(metric, cls):
                    raise TypeError(
                        f"metric {full!r} already registered as {metric.kind}")
                return metric
            metric = cls(full, help, enabled=self.enabled, **kwargs)
            self._metrics[full] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(self, name: str, help: str = "", *,
                  window: int = 2048) -> Histogram:
        return self._register(Histogram, name, help, window=window)

    def get(self, name: str) -> _Metric | None:
        full = f"{self.namespace}_{name}" if self.namespace else name
        with self._lock:
            return self._metrics.get(full)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Picklable ``{metric_name: {type, help, series}}`` snapshot.

        Series keys are label tuples (``(("worker", "worker-0"),)``);
        histogram series carry their full mergeable state.  This is the
        wire format workers ship over the stats-probe path.  A disabled
        registry snapshots to ``{}`` — nothing recorded, nothing shipped.
        """
        if not self.enabled:
            return {}
        with self._lock:
            metrics = list(self._metrics.values())
        return {metric.name: metric.snapshot() for metric in metrics}

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MetricsRegistry(namespace={self.namespace!r}, "
                f"metrics={len(self)}, enabled={self.enabled})")


# ---------------------------------------------------------------------- #
# snapshot algebra
# ---------------------------------------------------------------------- #
def relabel_snapshot(snapshot: dict, **labels) -> dict:
    """Copy of ``snapshot`` with ``labels`` added to every series.

    The front end stamps each worker snapshot with ``worker=<id>`` before
    merging, so per-worker series stay distinguishable (and gauges never
    collide) in the cluster view.
    """
    extra = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
    relabelled = {}
    for name, family in snapshot.items():
        series = {}
        for key, value in family["series"].items():
            merged_labels = dict(key)
            merged_labels.update(extra)
            series[tuple(sorted(merged_labels.items()))] = value
        relabelled[name] = {"type": family["type"], "help": family["help"],
                            "series": series}
    return relabelled


def merge_snapshots(snapshots) -> dict:
    """Fold an iterable of registry snapshots into one.

    Counters and gauges with identical (name, labels) add; histogram states
    merge through :meth:`LatencyHistogram.merge`, so percentiles of the
    merged snapshot are computed over the union of the sample windows.
    """
    merged: dict[str, dict] = {}
    for snapshot in snapshots:
        for name, family in snapshot.items():
            target = merged.setdefault(
                name, {"type": family["type"], "help": family["help"],
                       "series": {}})
            if target["type"] != family["type"]:
                raise TypeError(f"metric {name!r} merged across types "
                                f"({target['type']} vs {family['type']})")
            for key, value in family["series"].items():
                existing = target["series"].get(key)
                if existing is None:
                    target["series"][key] = (dict(value) if family["type"] == "histogram"
                                             else value)
                elif family["type"] == "histogram":
                    target["series"][key] = (LatencyHistogram.from_state(existing)
                                             .merge(value).state())
                else:
                    target["series"][key] = existing + value
    return merged


def _format_labels(key: tuple) -> str:
    if not key:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in key)
    return "{" + body + "}"


def _escape(value) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(snapshot: dict) -> str:
    """Prometheus text exposition (``text/plain; version=0.0.4``) of a snapshot.

    Counters/gauges render natively; histograms render as summaries with
    ``quantile`` labels (0.5/0.9/0.99) plus ``_count`` and ``_sum`` series,
    all computed from the merged sample windows.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        kind = family["type"]
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape(family['help'])}")
        lines.append(f"# TYPE {name} {'summary' if kind == 'histogram' else kind}")
        for key in sorted(family["series"]):
            value = family["series"][key]
            if kind == "histogram":
                summary = LatencyHistogram.from_state(value).summary()
                for quantile, field in (("0.5", "p50"), ("0.9", "p90"),
                                        ("0.99", "p99")):
                    labels = _format_labels(key + (("quantile", quantile),))
                    lines.append(f"{name}{labels} "
                                 f"{_format_value(summary[field])}")
                labels = _format_labels(key)
                lines.append(f"{name}_count{labels} {int(value['count'])}")
                lines.append(f"{name}_sum{labels} "
                             f"{_format_value(value['total'])}")
            else:
                lines.append(f"{name}{_format_labels(key)} "
                             f"{_format_value(value)}")
    return "\n".join(lines) + "\n"
