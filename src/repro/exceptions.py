"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError` so that callers can catch every library-specific failure
with a single ``except`` clause while still letting programming errors
(``TypeError``, ``ValueError`` from numpy, ...) propagate unchanged when they
indicate a bug rather than a well-identified domain failure.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DimensionError",
    "SingularMatrixError",
    "ConvergenceError",
    "PhaseFactorError",
    "BlockEncodingError",
    "StatePreparationError",
    "PrecisionError",
    "BackendError",
    "StaleSynthesisError",
    "ResourceModelError",
    "SolveTimeoutError",
    "AdmissionError",
    "QueueFullError",
    "QuotaExceededError",
    "WorkerUnavailableError",
    "CircuitOpenError",
]


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class DimensionError(ReproError, ValueError):
    """An array does not have the expected shape (non-square matrix,
    dimension that is not a power of two, mismatched right-hand side, ...)."""


class SingularMatrixError(ReproError, ValueError):
    """A matrix that must be invertible is (numerically) singular."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative process (refinement, phase-factor solver, VQLS
    optimisation, ...) failed to reach its target accuracy within its
    iteration budget."""

    def __init__(self, message: str, *, iterations: int | None = None,
                 achieved: float | None = None, target: float | None = None):
        super().__init__(message)
        #: number of iterations performed before giving up (``None`` if unknown).
        self.iterations = iterations
        #: best accuracy reached before giving up (``None`` if unknown).
        self.achieved = achieved
        #: accuracy that was requested.
        self.target = target


class PhaseFactorError(ConvergenceError):
    """The symmetric-QSP phase-factor solver could not represent the target
    polynomial (degree too large, polynomial not bounded by one, ...)."""


class BlockEncodingError(ReproError, ValueError):
    """A block-encoding could not be constructed or failed verification."""


class StatePreparationError(ReproError, ValueError):
    """A state-preparation routine received an invalid vector
    (zero norm, wrong length, ...)."""


class PrecisionError(ReproError, ValueError):
    """An unknown precision name or an invalid precision configuration."""


class BackendError(ReproError, RuntimeError):
    """A QPU backend could not execute the requested program."""


class StaleSynthesisError(BackendError):
    """Compiled solver artefacts no longer match the matrix they were built for.

    Raised when a matrix is mutated in place after circuit synthesis (detected
    by a fingerprint mismatch, see :func:`repro.utils.matrix_fingerprint`);
    call :meth:`repro.core.qsvt_solver.QSVTLinearSolver.recompile` to refresh
    the synthesis, or build a new solver."""


class ResourceModelError(ReproError, ValueError):
    """The fault-tolerant resource model was queried with invalid inputs."""


class SolveTimeoutError(ReproError, TimeoutError):
    """A request's deadline expired before its coalesced sweep started.

    Raised by :meth:`repro.engine.aio.AsyncSolveEngine.solve` (and therefore
    by the serving tier) for requests submitted with ``deadline=``: the
    deadline is checked when the batched sweep is about to run, so an expired
    request never consumes solve work — the primitive admission control and
    load-shedding build on."""

    def __init__(self, message: str, *, late_by: float | None = None):
        super().__init__(message)
        #: seconds past the deadline when the sweep would have started
        #: (``None`` if unknown).
        self.late_by = late_by


class AdmissionError(ReproError, RuntimeError):
    """A serving-tier request was rejected by admission control.

    Every admission rejection is **retriable by design**: the request was
    never dispatched, no partial work exists, and the client may retry after
    :attr:`retry_after` seconds (possibly against a different tenant budget
    or once queues drain).  Subclasses identify which control fired."""

    #: admission rejections never leave partial state behind.
    retriable = True

    def __init__(self, message: str, *, retry_after: float | None = None):
        super().__init__(message)
        #: suggested client back-off in seconds (``None`` = pick your own).
        self.retry_after = retry_after


class QueueFullError(AdmissionError):
    """The routed worker's queue depth crossed the load-shedding watermark."""


class QuotaExceededError(AdmissionError):
    """The tenant's token-bucket quota is exhausted."""


class WorkerUnavailableError(AdmissionError):
    """No live worker can serve the request (empty hash ring, or the routed
    worker died while the request was in flight; the surviving ring will own
    the fingerprint on retry).

    Retriable by design: the supervisor respawns dead workers in the
    background, so a short client back-off usually lands on a healed fleet
    — :class:`repro.serving.resilience.RetryPolicy` automates exactly
    that."""


class CircuitOpenError(WorkerUnavailableError):
    """The routed worker's circuit breaker is open: recent consecutive
    failures make dispatching there pointless, so the request is shed
    instantly instead of queueing onto a worker that is presumed down.
    :attr:`retry_after` carries the time until the breaker half-opens and
    admits a probe."""
