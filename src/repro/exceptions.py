"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError` so that callers can catch every library-specific failure
with a single ``except`` clause while still letting programming errors
(``TypeError``, ``ValueError`` from numpy, ...) propagate unchanged when they
indicate a bug rather than a well-identified domain failure.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DimensionError",
    "SingularMatrixError",
    "ConvergenceError",
    "PhaseFactorError",
    "BlockEncodingError",
    "StatePreparationError",
    "PrecisionError",
    "BackendError",
    "StaleSynthesisError",
    "ResourceModelError",
]


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class DimensionError(ReproError, ValueError):
    """An array does not have the expected shape (non-square matrix,
    dimension that is not a power of two, mismatched right-hand side, ...)."""


class SingularMatrixError(ReproError, ValueError):
    """A matrix that must be invertible is (numerically) singular."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative process (refinement, phase-factor solver, VQLS
    optimisation, ...) failed to reach its target accuracy within its
    iteration budget."""

    def __init__(self, message: str, *, iterations: int | None = None,
                 achieved: float | None = None, target: float | None = None):
        super().__init__(message)
        #: number of iterations performed before giving up (``None`` if unknown).
        self.iterations = iterations
        #: best accuracy reached before giving up (``None`` if unknown).
        self.achieved = achieved
        #: accuracy that was requested.
        self.target = target


class PhaseFactorError(ConvergenceError):
    """The symmetric-QSP phase-factor solver could not represent the target
    polynomial (degree too large, polynomial not bounded by one, ...)."""


class BlockEncodingError(ReproError, ValueError):
    """A block-encoding could not be constructed or failed verification."""


class StatePreparationError(ReproError, ValueError):
    """A state-preparation routine received an invalid vector
    (zero norm, wrong length, ...)."""


class PrecisionError(ReproError, ValueError):
    """An unknown precision name or an invalid precision configuration."""


class BackendError(ReproError, RuntimeError):
    """A QPU backend could not execute the requested program."""


class StaleSynthesisError(BackendError):
    """Compiled solver artefacts no longer match the matrix they were built for.

    Raised when a matrix is mutated in place after circuit synthesis (detected
    by a fingerprint mismatch, see :func:`repro.utils.matrix_fingerprint`);
    call :meth:`repro.core.qsvt_solver.QSVTLinearSolver.recompile` to refresh
    the synthesis, or build a new solver."""


class ResourceModelError(ReproError, ValueError):
    """The fault-tolerant resource model was queried with invalid inputs."""
