"""Abstract interface shared by every block-encoding construction."""

from __future__ import annotations

import abc

import numpy as np

from ..exceptions import BlockEncodingError
from ..quantum import QuantumCircuit
from ..quantum.statevector import circuit_unitary
from ..utils import check_power_of_two, check_square

__all__ = ["BlockEncoding"]


class BlockEncoding(abc.ABC):
    """A unitary whose top-left block encodes ``A / alpha``.

    Qubit layout convention (consistent with the rest of the library): the
    ``num_ancillas`` ancilla qubits are the **most significant** qubits and
    the ``num_data_qubits`` data qubits the least significant ones, so that
    the first ``N`` rows/columns of the unitary form the encoded block.

    Subclasses must set the attributes below (usually in ``__init__``) and
    implement :meth:`circuit`.

    Attributes
    ----------
    matrix_encoded:
        The matrix ``A`` being encoded (dense ``N x N``).
    alpha:
        Subnormalisation factor: the block equals ``A / alpha``.
    num_data_qubits / num_ancillas:
        Register sizes.
    name:
        Construction name used in reports.
    """

    #: populated by subclasses
    matrix_encoded: np.ndarray
    alpha: float
    num_data_qubits: int
    num_ancillas: int
    name: str = "block-encoding"

    # ------------------------------------------------------------------ #
    def _init_common(self, matrix, *, name: str) -> np.ndarray:
        """Validate the input matrix and populate the common attributes."""
        mat = check_square(np.asarray(matrix, dtype=complex), name="matrix")
        check_power_of_two(mat.shape[0], name="matrix dimension")
        self.matrix_encoded = mat
        self.num_data_qubits = int(mat.shape[0]).bit_length() - 1
        self.name = name
        return mat

    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        """Total number of qubits (ancillas + data)."""
        return self.num_ancillas + self.num_data_qubits

    @property
    def dimension(self) -> int:
        """Dimension ``N`` of the encoded matrix."""
        return 2**self.num_data_qubits

    @abc.abstractmethod
    def circuit(self) -> QuantumCircuit:
        """Quantum circuit implementing the block-encoding unitary."""

    def unitary(self) -> np.ndarray:
        """Dense unitary matrix of the block-encoding.

        The default implementation simulates :meth:`circuit`; subclasses that
        already hold a dense matrix override this for efficiency.
        """
        return circuit_unitary(self.circuit())

    def encoded_block(self) -> np.ndarray:
        """Extract the top-left ``N x N`` block of the unitary (i.e. ``A/α``)."""
        n = self.dimension
        return self.unitary()[:n, :n]

    def reconstruct(self) -> np.ndarray:
        """``alpha * encoded_block()`` — should equal the encoded matrix."""
        return self.alpha * self.encoded_block()

    def verify(self, *, atol: float = 1e-8) -> None:
        """Raise :class:`BlockEncodingError` when the encoding is inaccurate."""
        error = float(np.max(np.abs(self.reconstruct() - self.matrix_encoded)))
        if error > atol:
            raise BlockEncodingError(
                f"{self.name}: block-encoding error {error:.3e} exceeds tolerance {atol:.1e}")

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """One-line summary used by reports and examples."""
        return (f"{self.name}: N={self.dimension}, ancillas={self.num_ancillas}, "
                f"alpha={self.alpha:.4g}")
