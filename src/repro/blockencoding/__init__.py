"""Block-encodings of matrices into unitaries.

A block-encoding of ``A`` is a unitary ``U`` acting on ``a`` ancilla qubits
and ``n`` data qubits such that the top-left ``N x N`` block of ``U`` (the
``<0^a| U |0^a>`` block) equals ``A / α`` for a known subnormalisation factor
``α >= ||A||₂``.  Four constructions are provided, mirroring Sec. II-A1 of the
paper:

* :class:`~repro.blockencoding.dilation.DilationBlockEncoding` — exact
  single-ancilla dilation built from the SVD (the cheapest to simulate, no
  gate-level structure);
* :class:`~repro.blockencoding.lcu.LCUBlockEncoding` — Linear Combination of
  Unitaries over the Pauli decomposition of ``A`` (Refs [12], [25]);
* :class:`~repro.blockencoding.fable.FABLEBlockEncoding` — the FABLE oracle
  construction (Ref. [10]), ``α = 2**n`` up to entry rescaling;
* :mod:`~repro.blockencoding.banded` — structured encodings for
  banded/tridiagonal matrices such as the Poisson matrix (Ref. [37]),
  including the adder-based circulant circuit used to reproduce Fig. 2.
"""

from .base import BlockEncoding
from .dilation import DilationBlockEncoding
from .lcu import LCUBlockEncoding
from .fable import FABLEBlockEncoding
from .banded import (
    CirculantBlockEncoding,
    TridiagonalBlockEncoding,
    decrement_circuit,
    increment_circuit,
)
from .diagnostics import block_encoding_error, verify_block_encoding
from .factory import build_block_encoding

__all__ = [
    "BlockEncoding",
    "DilationBlockEncoding",
    "LCUBlockEncoding",
    "FABLEBlockEncoding",
    "CirculantBlockEncoding",
    "TridiagonalBlockEncoding",
    "increment_circuit",
    "decrement_circuit",
    "verify_block_encoding",
    "block_encoding_error",
    "build_block_encoding",
]
