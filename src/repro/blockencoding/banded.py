"""Structured block-encodings for banded (tridiagonal) matrices.

Section III-C4 of the paper uses the tridiagonal Poisson matrix of Eq. (7)
whose block-encoding (Ref. [37]) is built from *shift* operators implemented
with quantum adders.  Two constructions are provided:

* :class:`CirculantBlockEncoding` — a gate-level LCU over the cyclic shift
  operators ``{I, S, S†}`` (implemented with increment/decrement adder
  circuits), which encodes the *periodic* tridiagonal Toeplitz matrix.  This
  is the construction rendered by the Figure-2 benchmark and the one fed to
  the resource estimator: its cost is dominated by the two multi-controlled
  ladders of the adders, giving the ``O(n)``-per-call scaling used in
  Table II.
* :class:`TridiagonalBlockEncoding` — an exact encoding of the *Dirichlet*
  tridiagonal matrix (the paper's Eq. (7)), obtained by adding the two
  boundary-correction Pauli terms to the LCU; it delegates the heavy lifting
  to :class:`~repro.blockencoding.lcu.LCUBlockEncoding` over the Pauli
  decomposition, which stays compact for this structured matrix.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import BlockEncodingError
from ..quantum import QuantumCircuit
from ..quantum.pauli import pauli_decompose
from ..stateprep import prepare_state_circuit
from ..utils import check_power_of_two
from .base import BlockEncoding
from .lcu import LCUBlockEncoding

__all__ = [
    "increment_circuit",
    "decrement_circuit",
    "CirculantBlockEncoding",
    "TridiagonalBlockEncoding",
]


def increment_circuit(num_qubits: int) -> QuantumCircuit:
    """Cyclic increment ``|x> -> |x+1 mod 2**n>`` (big-endian register).

    Implemented as the usual ripple of multi-controlled X gates: qubit ``k``
    is flipped when all less-significant qubits are one, and the least
    significant qubit is flipped unconditionally at the end.
    """
    if num_qubits < 1:
        raise BlockEncodingError("increment needs at least one qubit")
    qc = QuantumCircuit(num_qubits, name="increment")
    for k in range(num_qubits - 1):
        controls = list(range(k + 1, num_qubits))
        qc.mcx(controls, k)
    qc.x(num_qubits - 1)
    return qc


def decrement_circuit(num_qubits: int) -> QuantumCircuit:
    """Cyclic decrement ``|x> -> |x-1 mod 2**n>`` (inverse of the increment)."""
    return increment_circuit(num_qubits).inverse()


class CirculantBlockEncoding(BlockEncoding):
    """LCU block-encoding of the circulant tridiagonal Toeplitz matrix.

    Encodes ``C = diagonal * I + off_diagonal * (S + S†)`` where ``S`` is the
    cyclic down-shift, using two ancilla qubits (three LCU terms) and the
    adder circuits above.  ``alpha = |diagonal| + 2 |off_diagonal|``.

    This matches the Poisson stencil away from the boundary; the Dirichlet
    matrix differs from it by a rank-two boundary term (see
    :class:`TridiagonalBlockEncoding`).
    """

    def __init__(self, num_data_qubits: int, *, diagonal: float = 2.0,
                 off_diagonal: float = -1.0) -> None:
        check_power_of_two(2**num_data_qubits)
        n = 2**num_data_qubits
        shift = np.roll(np.eye(n), 1, axis=0)      # S |x> = |x+1 mod n>
        matrix = diagonal * np.eye(n) + off_diagonal * (shift + shift.T)
        self._init_common(matrix, name="circulant")
        if diagonal == 0.0 and off_diagonal == 0.0:
            raise BlockEncodingError("cannot block-encode the zero matrix")
        self.diagonal = float(diagonal)
        self.off_diagonal = float(off_diagonal)
        self.alpha = abs(diagonal) + 2.0 * abs(off_diagonal)
        self.num_ancillas = 2

    # ------------------------------------------------------------------ #
    def _lcu_weights(self) -> tuple[np.ndarray, list[float]]:
        """Weights and phases of the three LCU terms ``(I, S, S†)``."""
        coefficients = np.array([self.diagonal, self.off_diagonal, self.off_diagonal])
        weights = np.abs(coefficients)
        phases = [0.0 if c >= 0 else np.pi for c in coefficients]
        return weights, phases

    def circuit(self) -> QuantumCircuit:
        """``PREPARE† · SELECT · PREPARE`` with adder-based shift unitaries."""
        n = self.num_data_qubits
        qc = QuantumCircuit(2 + n, name="circulant_block_encoding")
        weights, phases = self._lcu_weights()
        prep_vector = np.zeros(4)
        prep_vector[:3] = np.sqrt(weights / weights.sum())
        prepare = prepare_state_circuit(prep_vector).circuit
        ancillas = [0, 1]
        data = list(range(2, 2 + n))
        qc.compose(prepare, qubit_map=ancillas)
        # SELECT: |00> -> identity, |01> -> shift down, |10> -> shift up
        shift_down = increment_circuit(n)
        shift_up = decrement_circuit(n)
        self._controlled_compose(qc, shift_down, data, ancillas, (0, 1), phases[1])
        self._controlled_compose(qc, shift_up, data, ancillas, (1, 0), phases[2])
        if phases[0] != 0.0:
            # a negative diagonal coefficient needs a phase on the |00> branch
            self._branch_phase(qc, ancillas, (0, 0), phases[0])
        qc.compose(prepare.inverse(), qubit_map=ancillas)
        return qc

    @staticmethod
    def _branch_phase(qc: QuantumCircuit, ancillas: list[int], pattern: tuple[int, int],
                      phase: float) -> None:
        """Apply ``e^{iφ}`` on one ancilla basis state (acts trivially on data).

        Implemented as a small diagonal gate on the ancilla register only, so
        the resource model does not charge a data-register-sized block for
        what is merely a sign flip of one LCU branch.
        """
        dim = 2 ** len(ancillas)
        index = 0
        for bit in pattern:
            index = (index << 1) | int(bit)
        diagonal = np.ones(dim, dtype=complex)
        diagonal[index] = np.exp(1j * phase)
        qc.unitary(np.diag(diagonal), qubits=ancillas, name="branch_phase")

    @classmethod
    def _controlled_compose(cls, qc: QuantumCircuit, sub: QuantumCircuit, data: list[int],
                            ancillas: list[int], pattern: tuple[int, int],
                            phase: float) -> None:
        """Compose ``sub`` on the data register, controlled on the ancilla pattern."""
        from ..quantum.gates import Gate

        for gate in sub:
            remapped_targets = tuple(data[q] for q in gate.targets)
            remapped_controls = tuple(data[q] for q in gate.controls) + tuple(ancillas)
            control_states = gate.control_states + tuple(pattern)
            qc.append(Gate(name=gate.name, targets=remapped_targets, matrix=gate.matrix,
                           controls=remapped_controls, control_states=control_states,
                           params=gate.params))
        if phase != 0.0:
            cls._branch_phase(qc, ancillas, pattern, phase)


class TridiagonalBlockEncoding(LCUBlockEncoding):
    """Exact block-encoding of the Dirichlet tridiagonal Toeplitz matrix.

    This is the matrix of the 1-D Poisson equation (Eq. (7) of the paper, up
    to the ``1/h²`` scaling which only rescales ``alpha``).  The Pauli
    decomposition of this matrix contains ``O(n²)`` terms — far fewer than the
    ``O(4**n)`` of a dense matrix — so the generic LCU machinery stays cheap.

    Parameters
    ----------
    num_data_qubits:
        ``n`` such that the matrix is ``2**n x 2**n``.
    diagonal / off_diagonal:
        Stencil values (default ``2`` and ``-1``).
    scale:
        Optional overall factor (e.g. ``1/h²``); it multiplies ``alpha`` only.
    """

    def __init__(self, num_data_qubits: int, *, diagonal: float = 2.0,
                 off_diagonal: float = -1.0, scale: float = 1.0) -> None:
        n = 2**num_data_qubits
        matrix = np.zeros((n, n))
        np.fill_diagonal(matrix, diagonal)
        idx = np.arange(n - 1)
        matrix[idx, idx + 1] = off_diagonal
        matrix[idx + 1, idx] = off_diagonal
        matrix = scale * matrix
        terms = pauli_decompose(matrix)
        super().__init__(matrix, terms=terms)
        self.name = "tridiagonal"
