"""Structured block-encodings for banded (tridiagonal) matrices.

Section III-C4 of the paper uses the tridiagonal Poisson matrix of Eq. (7)
whose block-encoding (Ref. [37]) is built from *shift* operators implemented
with quantum adders.  Two constructions are provided:

* :class:`CirculantBlockEncoding` — a gate-level LCU over the cyclic shift
  operators ``{I, S, S†}`` (implemented with increment/decrement adder
  circuits), which encodes the *periodic* tridiagonal Toeplitz matrix.  This
  is the construction rendered by the Figure-2 benchmark and the one fed to
  the resource estimator: its cost is dominated by the two multi-controlled
  ladders of the adders, giving the ``O(n)``-per-call scaling used in
  Table II.
* :class:`TridiagonalBlockEncoding` — an exact encoding of the *Dirichlet*
  tridiagonal matrix (the paper's Eq. (7)), obtained by adding the two
  boundary-correction Pauli terms to the LCU; it delegates the heavy lifting
  to :class:`~repro.blockencoding.lcu.LCUBlockEncoding` over the Pauli
  decomposition, which stays compact for this structured matrix.
* :class:`BandedPlanBlockEncoding` — the *scalable* form of the Dirichlet
  encoding: the same LCU-over-shifts structure lowered directly to
  :class:`~repro.quantum.plan.PlanOp` sequences (4x4 PREPARE unitaries,
  controlled cyclic-``shift`` ops, small ancilla diagonals) instead of a
  dense ``2^q x 2^q`` unitary, so the circuit backend applies it in
  ``O(2^q)`` per call with **zero** dense matrices.  Exactness on the
  Dirichlet matrix comes from a circulant *embedding*: the ``N x N``
  Toeplitz tridiagonal ``T`` is the top-left block of the ``2N x 2N``
  circulant with the same stencil (the wrap-around entries live outside
  the block), and the embedding qubit is simply counted as a third
  ancilla, so the QSVT's all-ancillas-zero projector selects the Dirichlet
  block automatically.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import BlockEncodingError
from ..quantum import QuantumCircuit
from ..quantum.pauli import pauli_decompose
from ..quantum.plan import ExecutionPlan, PlanOp
from ..stateprep import prepare_state_circuit
from ..utils import check_power_of_two
from .base import BlockEncoding
from .lcu import LCUBlockEncoding

__all__ = [
    "increment_circuit",
    "decrement_circuit",
    "CirculantBlockEncoding",
    "TridiagonalBlockEncoding",
    "BandedPlanBlockEncoding",
    "compile_banded_qsvt_program",
]


def increment_circuit(num_qubits: int) -> QuantumCircuit:
    """Cyclic increment ``|x> -> |x+1 mod 2**n>`` (big-endian register).

    Implemented as the usual ripple of multi-controlled X gates: qubit ``k``
    is flipped when all less-significant qubits are one, and the least
    significant qubit is flipped unconditionally at the end.
    """
    if num_qubits < 1:
        raise BlockEncodingError("increment needs at least one qubit")
    qc = QuantumCircuit(num_qubits, name="increment")
    for k in range(num_qubits - 1):
        controls = list(range(k + 1, num_qubits))
        qc.mcx(controls, k)
    qc.x(num_qubits - 1)
    return qc


def decrement_circuit(num_qubits: int) -> QuantumCircuit:
    """Cyclic decrement ``|x> -> |x-1 mod 2**n>`` (inverse of the increment)."""
    return increment_circuit(num_qubits).inverse()


class CirculantBlockEncoding(BlockEncoding):
    """LCU block-encoding of the circulant tridiagonal Toeplitz matrix.

    Encodes ``C = diagonal * I + off_diagonal * (S + S†)`` where ``S`` is the
    cyclic down-shift, using two ancilla qubits (three LCU terms) and the
    adder circuits above.  ``alpha = |diagonal| + 2 |off_diagonal|``.

    This matches the Poisson stencil away from the boundary; the Dirichlet
    matrix differs from it by a rank-two boundary term (see
    :class:`TridiagonalBlockEncoding`).
    """

    def __init__(self, num_data_qubits: int, *, diagonal: float = 2.0,
                 off_diagonal: float = -1.0) -> None:
        check_power_of_two(2**num_data_qubits)
        n = 2**num_data_qubits
        shift = np.roll(np.eye(n), 1, axis=0)      # S |x> = |x+1 mod n>
        matrix = diagonal * np.eye(n) + off_diagonal * (shift + shift.T)
        self._init_common(matrix, name="circulant")
        if diagonal == 0.0 and off_diagonal == 0.0:
            raise BlockEncodingError("cannot block-encode the zero matrix")
        self.diagonal = float(diagonal)
        self.off_diagonal = float(off_diagonal)
        self.alpha = abs(diagonal) + 2.0 * abs(off_diagonal)
        self.num_ancillas = 2

    # ------------------------------------------------------------------ #
    def _lcu_weights(self) -> tuple[np.ndarray, list[float]]:
        """Weights and phases of the three LCU terms ``(I, S, S†)``."""
        coefficients = np.array([self.diagonal, self.off_diagonal, self.off_diagonal])
        weights = np.abs(coefficients)
        phases = [0.0 if c >= 0 else np.pi for c in coefficients]
        return weights, phases

    def circuit(self) -> QuantumCircuit:
        """``PREPARE† · SELECT · PREPARE`` with adder-based shift unitaries."""
        n = self.num_data_qubits
        qc = QuantumCircuit(2 + n, name="circulant_block_encoding")
        weights, phases = self._lcu_weights()
        prep_vector = np.zeros(4)
        prep_vector[:3] = np.sqrt(weights / weights.sum())
        prepare = prepare_state_circuit(prep_vector).circuit
        ancillas = [0, 1]
        data = list(range(2, 2 + n))
        qc.compose(prepare, qubit_map=ancillas)
        # SELECT: |00> -> identity, |01> -> shift down, |10> -> shift up
        shift_down = increment_circuit(n)
        shift_up = decrement_circuit(n)
        self._controlled_compose(qc, shift_down, data, ancillas, (0, 1), phases[1])
        self._controlled_compose(qc, shift_up, data, ancillas, (1, 0), phases[2])
        if phases[0] != 0.0:
            # a negative diagonal coefficient needs a phase on the |00> branch
            self._branch_phase(qc, ancillas, (0, 0), phases[0])
        qc.compose(prepare.inverse(), qubit_map=ancillas)
        return qc

    @staticmethod
    def _branch_phase(qc: QuantumCircuit, ancillas: list[int], pattern: tuple[int, int],
                      phase: float) -> None:
        """Apply ``e^{iφ}`` on one ancilla basis state (acts trivially on data).

        Implemented as a small diagonal gate on the ancilla register only, so
        the resource model does not charge a data-register-sized block for
        what is merely a sign flip of one LCU branch.
        """
        dim = 2 ** len(ancillas)
        index = 0
        for bit in pattern:
            index = (index << 1) | int(bit)
        diagonal = np.ones(dim, dtype=complex)
        diagonal[index] = np.exp(1j * phase)
        qc.unitary(np.diag(diagonal), qubits=ancillas, name="branch_phase")

    @classmethod
    def _controlled_compose(cls, qc: QuantumCircuit, sub: QuantumCircuit, data: list[int],
                            ancillas: list[int], pattern: tuple[int, int],
                            phase: float) -> None:
        """Compose ``sub`` on the data register, controlled on the ancilla pattern."""
        from ..quantum.gates import Gate

        for gate in sub:
            remapped_targets = tuple(data[q] for q in gate.targets)
            remapped_controls = tuple(data[q] for q in gate.controls) + tuple(ancillas)
            control_states = gate.control_states + tuple(pattern)
            qc.append(Gate(name=gate.name, targets=remapped_targets, matrix=gate.matrix,
                           controls=remapped_controls, control_states=control_states,
                           params=gate.params))
        if phase != 0.0:
            cls._branch_phase(qc, ancillas, pattern, phase)


class TridiagonalBlockEncoding(LCUBlockEncoding):
    """Exact block-encoding of the Dirichlet tridiagonal Toeplitz matrix.

    This is the matrix of the 1-D Poisson equation (Eq. (7) of the paper, up
    to the ``1/h²`` scaling which only rescales ``alpha``).  The Pauli
    decomposition of this matrix contains ``O(n²)`` terms — far fewer than the
    ``O(4**n)`` of a dense matrix — so the generic LCU machinery stays cheap.

    Parameters
    ----------
    num_data_qubits:
        ``n`` such that the matrix is ``2**n x 2**n``.
    diagonal / off_diagonal:
        Stencil values (default ``2`` and ``-1``).
    scale:
        Optional overall factor (e.g. ``1/h²``); it multiplies ``alpha`` only.
    """

    def __init__(self, num_data_qubits: int, *, diagonal: float = 2.0,
                 off_diagonal: float = -1.0, scale: float = 1.0) -> None:
        n = 2**num_data_qubits
        matrix = np.zeros((n, n))
        np.fill_diagonal(matrix, diagonal)
        idx = np.arange(n - 1)
        matrix[idx, idx + 1] = off_diagonal
        matrix[idx + 1, idx] = off_diagonal
        matrix = scale * matrix
        terms = pauli_decompose(matrix)
        super().__init__(matrix, terms=terms)
        self.name = "tridiagonal"


class BandedPlanBlockEncoding:
    """Plan-op block-encoding of the Dirichlet tridiagonal Toeplitz matrix.

    The ``N x N`` matrix ``T`` with stencil ``{0: diagonal, ±1: off_diagonal}``
    is encoded *exactly* without ever materialising a dense array, via a
    circulant embedding: ``T`` is the top-left block of the ``2N x 2N``
    circulant ``C = diagonal·I + off_diagonal·(S + S†)`` (the wrap-around
    entries of ``C`` live outside that block), and the doubling qubit is
    counted as a third ancilla so the QSVT's all-ancillas-zero projector
    postselects the Dirichlet block for free.

    Register layout (most significant first): ``[lcu0, lcu1, embed,
    data_0 .. data_{n-1}]`` — ``num_ancillas = 3``, ``dimension = 2**n``.
    One application of the encoding unitary is five :class:`PlanOp`\\ s:

    ``P``  — 4x4 Householder PREPARE on the LCU ancillas (first column
    ``sqrt(w/alpha)`` with ``w = (|diag|, |off|, |off|, 0)``);
    ``S``  — cyclic ``shift=+1`` over ``(embed, data)`` controlled on the
    LCU pattern ``(0, 1)``;
    ``S†`` — cyclic ``shift=-1`` controlled on ``(1, 0)``;
    ``D·P†`` — the branch-sign diagonal folded into the un-prepare.

    Every op is either a 4x4 unitary or a zero-payload ``shift``, so one
    call costs ``O(2**n)`` time and ``O(1)`` payload bytes — this is what
    lets :class:`~repro.core.backends.CircuitQSVTBackend` keep its
    O(nnz)-per-gate cost arbitrarily far past the dense-materialisation
    wall.  ``alpha = |diagonal| + 2 |off_diagonal|``.
    """

    name = "banded-plan"

    def __init__(self, num_data_qubits: int, *, diagonal: float = 2.0,
                 off_diagonal: float = -1.0) -> None:
        if num_data_qubits < 1:
            raise BlockEncodingError("need at least one data qubit")
        if off_diagonal == 0.0:
            raise BlockEncodingError(
                "off_diagonal must be nonzero (a purely diagonal operator "
                "does not need a banded block-encoding)")
        self.num_data_qubits = int(num_data_qubits)
        self.diagonal = float(diagonal)
        self.off_diagonal = float(off_diagonal)
        self.alpha = abs(self.diagonal) + 2.0 * abs(self.off_diagonal)
        self.num_ancillas = 3          # two LCU qubits + the embedding qubit
        self._plan_ops: dict[bool, tuple[PlanOp, ...]] = {}

    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        """Total register width (ancillas + data)."""
        return self.num_ancillas + self.num_data_qubits

    @property
    def dimension(self) -> int:
        """Dimension ``N`` of the encoded Dirichlet matrix."""
        return 2**self.num_data_qubits

    # ------------------------------------------------------------------ #
    def _prepare_matrix(self) -> np.ndarray:
        """Real orthogonal 4x4 with first column ``sqrt(w/alpha)``.

        Householder reflection mapping ``e_0`` to the target column; being
        a reflection it is symmetric, so the same matrix serves as both
        PREPARE and PREPARE†.
        """
        weights = np.array([abs(self.diagonal), abs(self.off_diagonal),
                            abs(self.off_diagonal), 0.0])
        target = np.sqrt(weights / self.alpha)
        u = np.zeros(4)
        u[0] = 1.0
        u -= target
        norm_sq = float(u @ u)
        if norm_sq <= 1e-28:
            return np.eye(4)
        return np.eye(4) - (2.0 / norm_sq) * np.outer(u, u)

    def _sign_diagonal(self) -> np.ndarray:
        """Branch signs of the LCU terms ``(I, S, S†, unused)``."""
        sgn = lambda c: -1.0 if c < 0 else 1.0  # noqa: E731 - tiny helper
        return np.array([sgn(self.diagonal), sgn(self.off_diagonal),
                         sgn(self.off_diagonal), 1.0])

    def plan_ops(self, *, adjoint: bool = False) -> tuple[PlanOp, ...]:
        """The op sequence of one encoding call (or its adjoint), cached.

        The adjoint reverses the sequence with inverted shifts; PREPARE is
        a real reflection and the sign diagonal is real, so their own
        adjoints are themselves (only the fold order flips).
        """
        cached = self._plan_ops.get(bool(adjoint))
        if cached is not None:
            return cached
        prepare = self._prepare_matrix()
        signs = np.diag(self._sign_diagonal())
        lcu = (0, 1)
        circulant_register = tuple(range(2, self.num_qubits))

        def shift_op(amount: int, pattern: tuple[int, int]) -> PlanOp:
            return PlanOp(kind="shift", qubits=circulant_register,
                          controls=lcu, control_states=pattern, shift=amount)

        if not adjoint:
            ops = (
                PlanOp(kind="unitary", qubits=lcu,
                       matrix=np.ascontiguousarray(prepare, dtype=complex)),
                shift_op(+1, (0, 1)),
                shift_op(-1, (1, 0)),
                PlanOp(kind="unitary", qubits=lcu,
                       matrix=np.ascontiguousarray(prepare @ signs,
                                                   dtype=complex)),
            )
        else:
            ops = (
                PlanOp(kind="unitary", qubits=lcu,
                       matrix=np.ascontiguousarray(signs @ prepare,
                                                   dtype=complex)),
                shift_op(+1, (1, 0)),
                shift_op(-1, (0, 1)),
                PlanOp(kind="unitary", qubits=lcu,
                       matrix=np.ascontiguousarray(prepare, dtype=complex)),
            )
        self._plan_ops[bool(adjoint)] = ops
        return ops

    # ------------------------------------------------------------------ #
    def unitary(self, *, adjoint: bool = False) -> np.ndarray:
        """Dense matrix of the encoding unitary — **small registers only**.

        Exists for oracle tests (the plan-op route checked against an
        explicitly assembled unitary); production paths never call it.
        """
        if self.num_qubits > 14:
            raise BlockEncodingError(
                f"refusing to materialise a {self.num_qubits}-qubit unitary; "
                "the plan-op route exists precisely to avoid this")
        ops = self.plan_ops(adjoint=adjoint)
        plan = ExecutionPlan(self.num_qubits, ops,
                             source_gate_count=len(ops), fusion="structured",
                             max_fused_qubits=0)
        basis = np.eye(2**self.num_qubits, dtype=complex)
        return plan.apply_batched(basis).T

    def encoded_block(self) -> np.ndarray:
        """Top-left ``N x N`` block times ``alpha`` (oracle tests only)."""
        full = self.unitary()
        return self.alpha * full[: self.dimension, : self.dimension].real


def compile_banded_qsvt_program(encoding: BandedPlanBlockEncoding, wx_phases,
                                *, real_part: bool = True):
    """Hand-assemble the QSVT program for a plan-op banded encoding.

    Mirrors :func:`repro.qsp.qsvt_circuit.compile_qsvt_program` — same
    temporal order (``U, phase(φ_d), U†, phase(φ_{d-1}), …``), same
    ``±θ`` averaging for the real part, same ``e^{-iπd/2}`` global phase —
    but builds the :class:`~repro.quantum.plan.ExecutionPlan`\\ s directly
    from the encoding's op sequences instead of lowering a gate circuit,
    so no ``2^q x 2^q`` array is ever formed.
    """
    from ..qsp.qsvt_circuit import (QSVTProgram, projector_phase_gate,
                                    wx_to_circuit_phases)

    theta = np.asarray(wx_phases, dtype=float)
    sign_list = [1.0, -1.0] if real_part else [1.0]
    ancilla_register = tuple(range(encoding.num_ancillas))
    plans = []
    global_phases = []
    calls_per_run = 0
    for sign in sign_list:
        phases, global_phase = wx_to_circuit_phases(sign * theta)
        d = phases.shape[0]
        calls_per_run = d
        ops: list[PlanOp] = []
        for step in range(d):
            ops.extend(encoding.plan_ops(adjoint=(step % 2 == 1)))
            angle = float(phases[d - 1 - step])
            diag = np.diag(projector_phase_gate(encoding.num_ancillas, angle))
            ops.append(PlanOp(kind="diagonal", qubits=ancilla_register,
                              diagonal=np.ascontiguousarray(diag)))
        plans.append(ExecutionPlan(encoding.num_qubits, ops,
                                   source_gate_count=len(ops),
                                   fusion="structured", max_fused_qubits=0))
        global_phases.append(global_phase)
    return QSVTProgram(num_qubits=encoding.num_qubits,
                       num_ancillas=encoding.num_ancillas,
                       dimension=encoding.dimension,
                       plans=plans, global_phases=global_phases,
                       block_encoding_calls_per_run=calls_per_run,
                       circuit_depth=plans[0].num_contractions)
