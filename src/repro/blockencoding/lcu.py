"""Linear-Combination-of-Unitaries (LCU) block-encoding.

The matrix is first decomposed into Pauli strings (tree-approach decomposition
of Ref. [25], re-implemented in :mod:`repro.quantum.pauli`):

.. math::  A = \\sum_j \\alpha_j P_j .

Complex coefficients are handled by absorbing their phase into the selected
unitary, so the LCU uses the non-negative weights ``|α_j|`` and the unitaries
``e^{i arg(α_j)} P_j``.  The block-encoding is the standard
``PREPARE† · SELECT · PREPARE`` sandwich:

* ``PREPARE`` maps ``|0..0>`` of the ``m = ceil(log2 L)`` ancillas to
  ``Σ_j sqrt(|α_j| / λ) |j>`` with ``λ = Σ_j |α_j|`` (implemented with the
  tree-based state preparation);
* ``SELECT`` applies ``e^{i arg(α_j)} P_j`` to the data register controlled on
  the ancilla register being ``|j>``.

The subnormalisation is ``alpha = λ = Σ_j |α_j|``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import BlockEncodingError
from ..quantum import QuantumCircuit
from ..quantum.pauli import PauliString, pauli_decompose
from ..stateprep import prepare_state_circuit
from .base import BlockEncoding

__all__ = ["LCUBlockEncoding"]


class LCUBlockEncoding(BlockEncoding):
    """Block-encoding of ``A`` as a linear combination of Pauli unitaries.

    Parameters
    ----------
    matrix:
        Matrix to encode (``N x N`` with ``N`` a power of two).
    terms:
        Optional pre-computed Pauli decomposition; when omitted it is computed
        with :func:`repro.quantum.pauli.pauli_decompose`.
    tolerance:
        Pruning threshold passed to the Pauli decomposition.
    decompose_prepare:
        When ``True`` the PREPARE circuits are expanded into elementary gates
        (CNOT + Ry); the default keeps them as dense multiplexor blocks, which
        simulates faster and is unitarily identical.
    """

    def __init__(self, matrix, *, terms: list[PauliString] | None = None,
                 tolerance: float = 1e-12, decompose_prepare: bool = False) -> None:
        mat = self._init_common(matrix, name="lcu")
        self.terms = terms if terms is not None else pauli_decompose(mat, tolerance=tolerance)
        if not self.terms:
            raise BlockEncodingError("the matrix has an empty Pauli decomposition")
        weights = np.array([abs(t.coefficient) for t in self.terms], dtype=float)
        self.alpha = float(weights.sum())
        self.num_terms = len(self.terms)
        self.num_ancillas = max(1, int(np.ceil(np.log2(self.num_terms))))
        self._decompose_prepare = bool(decompose_prepare)
        self._weights = weights

    # ------------------------------------------------------------------ #
    def prepare_vector(self) -> np.ndarray:
        """Amplitudes loaded by PREPARE: ``sqrt(|α_j|/λ)`` padded to ``2**m``."""
        padded = np.zeros(2**self.num_ancillas)
        padded[: self.num_terms] = np.sqrt(self._weights / self.alpha)
        return padded

    def circuit(self) -> QuantumCircuit:
        """``PREPARE† · SELECT · PREPARE`` circuit (ancillas are qubits ``0..m-1``)."""
        m, n = self.num_ancillas, self.num_data_qubits
        qc = QuantumCircuit(m + n, name="lcu_block_encoding")
        prepare = prepare_state_circuit(self.prepare_vector(),
                                        decompose=self._decompose_prepare).circuit
        ancilla_qubits = list(range(m))
        data_qubits = list(range(m, m + n))
        qc.compose(prepare, qubit_map=ancilla_qubits)
        # SELECT: controlled application of each (phased) Pauli term
        for index, term in enumerate(self.terms):
            phase = term.coefficient / abs(term.coefficient)
            unitary = phase * term.unitary()
            control_bits = [(index >> (m - 1 - bit)) & 1 for bit in range(m)]
            qc.unitary(unitary, qubits=data_qubits, name=f"select_{term.label}",
                       controls=ancilla_qubits, control_states=control_bits)
        qc.compose(prepare.inverse(), qubit_map=ancilla_qubits)
        return qc

    def unitary(self) -> np.ndarray:
        """Dense unitary assembled directly (faster than simulating the circuit).

        Uses the same PREPARE unitary as :meth:`circuit` (obtained by
        simulating the small ``m``-qubit preparation circuit), so the two
        representations agree exactly.
        """
        from ..quantum.statevector import circuit_unitary

        m, n = self.num_ancillas, self.num_data_qubits
        dim_anc, dim_dat = 2**m, 2**n
        prepare_circuit = prepare_state_circuit(self.prepare_vector(),
                                                decompose=self._decompose_prepare).circuit
        prepare = circuit_unitary(prepare_circuit)
        select = np.zeros((dim_anc * dim_dat, dim_anc * dim_dat), dtype=complex)
        eye = np.eye(dim_dat, dtype=complex)
        for j in range(dim_anc):
            if j < self.num_terms:
                term = self.terms[j]
                phase = term.coefficient / abs(term.coefficient)
                block = phase * term.unitary()
            else:
                block = eye
            select[j * dim_dat:(j + 1) * dim_dat, j * dim_dat:(j + 1) * dim_dat] = block
        prep_full = np.kron(prepare, eye)
        return prep_full.conj().T @ select @ prep_full
