"""Exact single-ancilla unitary dilation block-encoding.

For a matrix ``Ã`` with ``||Ã||₂ <= 1`` the matrix

.. math::

    U = \\begin{pmatrix} Ã & \\sqrt{I - ÃÃ^†} \\\\ \\sqrt{I - Ã^†Ã} & -Ã^† \\end{pmatrix}

is unitary and block-encodes ``Ã`` with a single ancilla qubit.  This is the
"mathematical" block-encoding: it has no efficient gate-level structure (the
resource model treats it as one generic two-register unitary), but it is exact,
cheap to build classically, and is therefore the default choice of the
simulation backends.  The subnormalisation is ``alpha = margin * ||A||₂``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import BlockEncodingError
from ..quantum import QuantumCircuit
from .base import BlockEncoding

__all__ = ["DilationBlockEncoding"]


class DilationBlockEncoding(BlockEncoding):
    """Exact dilation block-encoding of an arbitrary matrix.

    Parameters
    ----------
    matrix:
        The ``N x N`` matrix ``A`` to encode (``N`` a power of two).
    spectral_margin:
        The matrix is scaled by ``alpha = spectral_margin * ||A||₂`` before
        dilation; a margin slightly above 1 keeps the singular values of
        ``A/alpha`` strictly below one, which avoids numerical issues in the
        square roots (default 1.0 — exact normalisation).
    """

    def __init__(self, matrix, *, spectral_margin: float = 1.0) -> None:
        mat = self._init_common(matrix, name="dilation")
        if spectral_margin < 1.0:
            raise BlockEncodingError("spectral_margin must be >= 1")
        norm = float(np.linalg.norm(mat, 2))
        if norm == 0.0:
            raise BlockEncodingError("cannot block-encode the zero matrix")
        self.alpha = float(spectral_margin * norm)
        self.num_ancillas = 1
        self._unitary = self._build_unitary(mat / self.alpha)

    @staticmethod
    def _build_unitary(a_tilde: np.ndarray) -> np.ndarray:
        """Assemble the dilation unitary from the SVD of ``Ã``."""
        w, sigma, vh = np.linalg.svd(a_tilde)
        sigma = np.clip(sigma, 0.0, 1.0)
        complement = np.sqrt(1.0 - sigma**2)
        n = a_tilde.shape[0]
        upper_right = (w * complement) @ w.conj().T          # sqrt(I - Ã Ã†)
        lower_left = (vh.conj().T * complement) @ vh          # sqrt(I - Ã† Ã)
        out = np.zeros((2 * n, 2 * n), dtype=complex)
        out[:n, :n] = a_tilde
        out[:n, n:] = upper_right
        out[n:, :n] = lower_left
        out[n:, n:] = -a_tilde.conj().T
        return out

    # ------------------------------------------------------------------ #
    def unitary(self) -> np.ndarray:
        """Dense dilation unitary (ancilla qubit is the most significant)."""
        return self._unitary

    def circuit(self) -> QuantumCircuit:
        """Circuit holding the dilation as a single dense gate on all qubits."""
        qc = QuantumCircuit(self.num_qubits, name="dilation_block_encoding")
        qc.unitary(self._unitary, qubits=list(range(self.num_qubits)),
                   name="dilation")
        return qc
