"""Factory helper mapping method names to block-encoding constructors.

The solver configuration exposes the block-encoding choice as a string
(``"dilation"``, ``"lcu"``, ``"fable"``, ``"tridiagonal"``); this module keeps
the mapping in one place.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import BlockEncodingError
from .base import BlockEncoding
from .dilation import DilationBlockEncoding
from .fable import FABLEBlockEncoding
from .lcu import LCUBlockEncoding

__all__ = ["build_block_encoding"]


def build_block_encoding(matrix, method: str = "dilation", **kwargs) -> BlockEncoding:
    """Build a block-encoding of ``matrix`` using the named construction.

    Parameters
    ----------
    matrix:
        Matrix to encode.
    method:
        One of ``"dilation"`` (default), ``"lcu"``, ``"fable"`` or
        ``"tridiagonal"`` (the latter requires a tridiagonal Toeplitz matrix
        and simply routes through the LCU of its Pauli decomposition).
    kwargs:
        Forwarded to the selected constructor.
    """
    key = method.lower()
    if key == "dilation":
        return DilationBlockEncoding(matrix, **kwargs)
    if key == "lcu":
        return LCUBlockEncoding(matrix, **kwargs)
    if key == "fable":
        return FABLEBlockEncoding(matrix, **kwargs)
    if key == "tridiagonal":
        from .banded import TridiagonalBlockEncoding

        mat = np.asarray(matrix, dtype=float)
        n = mat.shape[0]
        diag = float(mat[0, 0])
        off = float(mat[0, 1]) if n > 1 else 0.0
        reference = np.zeros_like(mat)
        np.fill_diagonal(reference, diag)
        idx = np.arange(n - 1)
        reference[idx, idx + 1] = off
        reference[idx + 1, idx] = off
        if not np.allclose(reference, mat, atol=1e-12 * max(1.0, abs(diag), abs(off))):
            raise BlockEncodingError(
                "method='tridiagonal' requires a tridiagonal Toeplitz matrix")
        num_qubits = int(n).bit_length() - 1
        return TridiagonalBlockEncoding(num_qubits, diagonal=diag, off_diagonal=off, **kwargs)
    raise BlockEncodingError(f"unknown block-encoding method {method!r}")
