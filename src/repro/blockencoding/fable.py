"""FABLE-style block-encoding (Fast Approximate BLock Encoding, Ref. [10]).

The construction uses three registers — a one-qubit flag ``f``, an ``n``-qubit
row register ``r`` and the ``n``-qubit data (column) register ``c`` — and the
entry oracle

.. math::  O_A |0>_f |i>_r |j>_c = (a_{ij} |0>_f + \\sqrt{1-a_{ij}^2}\\,|1>_f) |i>_r |j>_c,

implemented as one uniformly controlled ``Ry`` on the flag with angles
``θ_{ij} = 2 arccos(a_{ij})``.  Sandwiching the oracle between Hadamards on
the row register and a register swap gives a block-encoding with
``alpha = 2**n * max|a_ij|`` (the entries are rescaled to ``[-1, 1]`` first).

The "approximate" part of FABLE is a compression threshold: entries whose
magnitude is below ``compression_threshold * max|a_ij|`` are treated as zero,
which removes the corresponding rotations; the resulting encoding error is
reported by :meth:`FABLEBlockEncoding.verify` /
:func:`repro.blockencoding.diagnostics.block_encoding_error`.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import BlockEncodingError
from ..quantum import QuantumCircuit
from ..quantum.decompositions import multiplexed_ry_circuit, multiplexor_matrix
from .base import BlockEncoding

__all__ = ["FABLEBlockEncoding"]


class FABLEBlockEncoding(BlockEncoding):
    """FABLE block-encoding of a real matrix.

    Parameters
    ----------
    matrix:
        Real ``N x N`` matrix, ``N = 2**n``.
    compression_threshold:
        Relative threshold below which entries are dropped (0 disables
        compression, reproducing the exact oracle).
    decompose:
        Expand the oracle multiplexor into CNOT + Ry gates (``4**n`` rotations,
        the complexity quoted in Sec. II-A1) instead of keeping it as one dense
        block.
    """

    def __init__(self, matrix, *, compression_threshold: float = 0.0,
                 decompose: bool = False) -> None:
        mat = self._init_common(matrix, name="fable")
        if np.iscomplexobj(matrix) and np.max(np.abs(np.imag(mat))) > 1e-14:
            raise BlockEncodingError("the FABLE implementation handles real matrices only")
        real = np.real(mat)
        max_entry = float(np.max(np.abs(real)))
        if max_entry == 0.0:
            raise BlockEncodingError("cannot block-encode the zero matrix")
        self._scaled = real / max_entry
        if compression_threshold < 0.0 or compression_threshold >= 1.0:
            raise BlockEncodingError("compression_threshold must be in [0, 1)")
        if compression_threshold > 0.0:
            mask = np.abs(self._scaled) < compression_threshold
            self._scaled = np.where(mask, 0.0, self._scaled)
        n = self.num_data_qubits
        self.num_ancillas = 1 + n          # flag + row register
        self.alpha = float(max_entry * 2**n)
        self._decompose = bool(decompose)

    # ------------------------------------------------------------------ #
    def oracle_angles(self) -> np.ndarray:
        """Rotation angles ``θ_{ij} = 2 arccos(a_{ij})`` flattened row-major."""
        clipped = np.clip(self._scaled, -1.0, 1.0)
        return 2.0 * np.arccos(clipped).reshape(-1)

    def circuit(self) -> QuantumCircuit:
        """FABLE circuit.  Qubit layout: ``[flag, row(n), column(n)]``."""
        n = self.num_data_qubits
        flag = 0
        row = list(range(1, 1 + n))
        col = list(range(1 + n, 1 + 2 * n))
        qc = QuantumCircuit(1 + 2 * n, name="fable_block_encoding")
        for q in row:
            qc.h(q)
        angles = self.oracle_angles()
        controls = row + col
        if self._decompose:
            oracle = multiplexed_ry_circuit(angles, controls=controls, target=flag,
                                            num_qubits=qc.num_qubits)
            qc.compose(oracle)
        else:
            # dense multiplexor: controls (row, col) are the most significant
            # qubits of the gate, flag the least significant one.
            matrix = multiplexor_matrix("ry", angles)
            qc.unitary(matrix, qubits=[*controls, flag], name="fable_oracle")
        for r_qubit, c_qubit in zip(row, col):
            qc.swap(r_qubit, c_qubit)
        for q in row:
            qc.h(q)
        return qc
