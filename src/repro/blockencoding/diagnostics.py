"""Verification helpers for block-encodings."""

from __future__ import annotations

import numpy as np

from ..exceptions import BlockEncodingError
from ..utils import is_unitary
from .base import BlockEncoding

__all__ = ["block_encoding_error", "verify_block_encoding"]


def block_encoding_error(encoding: BlockEncoding, matrix=None) -> float:
    """Maximum absolute deviation between ``alpha * block`` and the target matrix.

    Parameters
    ----------
    encoding:
        Block-encoding under test.
    matrix:
        Matrix the encoding is supposed to represent; defaults to
        ``encoding.matrix_encoded``.
    """
    target = encoding.matrix_encoded if matrix is None else np.asarray(matrix, dtype=complex)
    return float(np.max(np.abs(encoding.reconstruct() - target)))


def verify_block_encoding(encoding: BlockEncoding, *, atol: float = 1e-8,
                          check_unitarity: bool = True) -> dict:
    """Full verification of a block-encoding.

    Checks that the unitary is actually unitary and that the encoded block
    reproduces the target matrix within ``atol``; returns a report dict with
    the measured errors.  Raises :class:`BlockEncodingError` on failure.
    """
    unitary = encoding.unitary()
    report = {
        "name": encoding.name,
        "alpha": encoding.alpha,
        "num_ancillas": encoding.num_ancillas,
        "encoding_error": block_encoding_error(encoding),
        "unitarity_error": float(
            np.max(np.abs(unitary @ unitary.conj().T - np.eye(unitary.shape[0])))),
    }
    if check_unitarity and not is_unitary(unitary, atol=max(atol, 1e-8)):
        raise BlockEncodingError(
            f"{encoding.name}: matrix is not unitary "
            f"(error {report['unitarity_error']:.3e})")
    if report["encoding_error"] > atol:
        raise BlockEncodingError(
            f"{encoding.name}: encoded block deviates by {report['encoding_error']:.3e} "
            f"(tolerance {atol:.1e})")
    return report
