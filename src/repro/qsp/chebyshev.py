"""Chebyshev-series utilities.

The inverse-function approximation of Eq. (4) is expressed in the Chebyshev
basis (the paper stresses that this avoids Runge's phenomenon for the large
degrees involved), so all polynomial manipulation in this package is done on
Chebyshev coefficient vectors ``c`` with the convention
``P(x) = Σ_k c[k] T_k(x)``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from numpy.polynomial import chebyshev as _cheb

__all__ = [
    "evaluate_chebyshev",
    "evaluate_chebyshev_operator",
    "chebyshev_coefficients_of_function",
    "chebyshev_nodes",
    "truncate_series",
    "parity_of_series",
    "enforce_parity",
    "scale_series_to_max",
    "max_abs_on_interval",
]


def evaluate_chebyshev(coefficients, x) -> np.ndarray:
    """Evaluate ``Σ_k c_k T_k(x)`` (Clenshaw recurrence via numpy)."""
    return _cheb.chebval(np.asarray(x, dtype=float), np.asarray(coefficients, dtype=float))


def evaluate_chebyshev_operator(coefficients, apply, vector) -> np.ndarray:
    """Matrix-free Clenshaw evaluation of ``P(M) v`` with ``P = Σ_k c_k T_k``.

    ``apply`` is the only access to ``M`` — one matrix-vector (or, when
    ``vector`` is a column stack, matrix-matrix) product per Chebyshev term,
    so the cost is ``degree × O(nnz)`` instead of the dense ``O(N³)`` SVD
    route.  For a symmetric ``M`` with spectrum in ``[-1, 1]`` this equals
    applying ``P`` to the eigenvalues, which is exactly the singular-value
    transformation the ideal backend performs — see
    :meth:`repro.core.backends.IdealPolynomialBackend`.
    """
    coeffs = np.asarray(coefficients, dtype=float)
    v = np.asarray(vector, dtype=float)
    if coeffs.shape[0] == 1:
        return coeffs[0] * v
    b1 = np.zeros_like(v)
    b2 = np.zeros_like(v)
    for k in range(coeffs.shape[0] - 1, 0, -1):
        b1, b2 = coeffs[k] * v + 2.0 * apply(b1) - b2, b1
    return coeffs[0] * v + apply(b1) - b2


def chebyshev_nodes(count: int) -> np.ndarray:
    """Chebyshev points of the first kind ``cos(π(2k+1)/(2M))``, ``k = 0..M-1``."""
    if count < 1:
        raise ValueError("count must be >= 1")
    k = np.arange(count)
    return np.cos(np.pi * (2 * k + 1) / (2 * count))


def chebyshev_coefficients_of_function(f: Callable[[np.ndarray], np.ndarray],
                                       degree: int, *, parity: int | None = None
                                       ) -> np.ndarray:
    """Chebyshev coefficients of ``f`` up to ``degree`` (exact for polynomials).

    Uses the discrete orthogonality of Chebyshev polynomials on ``degree + 1``
    first-kind nodes, i.e. the transform is exact whenever ``f`` is a
    polynomial of degree at most ``degree``; for smooth non-polynomial ``f``
    it returns the interpolant's coefficients.

    Parameters
    ----------
    parity:
        If 0 or 1, zero out the coefficients of the opposite parity (useful
        when the target is known to be even/odd and tiny asymmetries should
        be removed).
    """
    if degree < 0:
        raise ValueError("degree must be non-negative")
    nodes = chebyshev_nodes(degree + 1)
    values = np.asarray(f(nodes), dtype=float)
    coeffs = _dct_coefficients(values, nodes, degree)
    if parity is not None:
        coeffs = enforce_parity(coeffs, parity)
    return coeffs


def _dct_coefficients(values: np.ndarray, nodes: np.ndarray, degree: int) -> np.ndarray:
    """Discrete Chebyshev transform on first-kind nodes."""
    m = nodes.shape[0]
    vander = _cheb.chebvander(nodes, degree)          # shape (m, degree+1)
    coeffs = (2.0 / m) * (vander.T @ values)
    coeffs[0] *= 0.5
    return coeffs


def truncate_series(coefficients, tolerance: float) -> np.ndarray:
    """Drop trailing coefficients whose cumulative absolute sum is below ``tolerance``.

    The returned series differs from the input by at most ``tolerance`` in
    sup-norm on ``[-1, 1]`` (since ``|T_k| <= 1``).
    """
    coeffs = np.asarray(coefficients, dtype=float)
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    tail = np.cumsum(np.abs(coeffs[::-1]))[::-1]
    keep = np.nonzero(tail > tolerance)[0]
    if keep.size == 0:
        return np.zeros(1)
    return coeffs[: keep[-1] + 1].copy()


def parity_of_series(coefficients, *, tolerance: float = 1e-12) -> int | None:
    """Return 0 (even), 1 (odd) or ``None`` when the series has no definite parity."""
    coeffs = np.asarray(coefficients, dtype=float)
    even_mass = float(np.abs(coeffs[0::2]).sum())
    odd_mass = float(np.abs(coeffs[1::2]).sum())
    if odd_mass <= tolerance * max(1.0, even_mass):
        return 0
    if even_mass <= tolerance * max(1.0, odd_mass):
        return 1
    return None


def enforce_parity(coefficients, parity: int) -> np.ndarray:
    """Zero out the coefficients of the opposite parity."""
    coeffs = np.asarray(coefficients, dtype=float).copy()
    if parity not in (0, 1):
        raise ValueError("parity must be 0 or 1")
    coeffs[(1 - parity)::2] = 0.0
    return coeffs


def max_abs_on_interval(coefficients, *, oversampling: int = 8) -> float:
    """Maximum of ``|P(x)|`` over ``[-1, 1]`` on a dense Chebyshev grid.

    The grid holds ``oversampling * (degree + 1)`` points, enough to localise
    the extrema of a degree-``d`` polynomial to high accuracy for the purpose
    of rescaling it below one.
    """
    coeffs = np.asarray(coefficients, dtype=float)
    degree = coeffs.shape[0] - 1
    grid = np.cos(np.linspace(0.0, np.pi, max(oversampling * (degree + 1), 64)))
    return float(np.max(np.abs(evaluate_chebyshev(coeffs, grid))))


def scale_series_to_max(coefficients, max_norm: float, *, oversampling: int = 8
                        ) -> tuple[np.ndarray, float]:
    """Rescale a series so its sup-norm on ``[-1, 1]`` equals ``max_norm``.

    Returns ``(scaled_coefficients, factor)`` with
    ``scaled = factor * coefficients``.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    current = max_abs_on_interval(coefficients, oversampling=oversampling)
    if current == 0.0:
        return np.asarray(coefficients, dtype=float).copy(), 1.0
    factor = max_norm / current
    return np.asarray(coefficients, dtype=float) * factor, factor
