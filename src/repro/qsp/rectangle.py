"""Even rectangle-window polynomial (Ref. [30] of the paper).

The truncated inverse expansion of Eq. (4) is not bounded by one inside the
spectral gap ``(-1/(2κ), 1/(2κ))``.  One classical fix (Martyn et al.,
"Grand unification of quantum algorithms") multiplies it by an even polynomial
approximating the rectangle function that is ``≈ 1`` on ``|x| ≥ 1/κ`` and
``≈ 0`` near the origin.  We build that window by Chebyshev-interpolating the
smooth even surrogate

.. math::  r(x) = 1 + \\tfrac12\\left(\\mathrm{erf}(k(x - t)) - \\mathrm{erf}(k(x + t))\\right),

whose sharpness ``k`` and transition point ``t`` are chosen from ``κ``.  The
product with the inverse polynomial is formed in the Chebyshev basis
(:func:`window_inverse_polynomial`), preserving the odd parity.
"""

from __future__ import annotations

import numpy as np
from numpy.polynomial import chebyshev as _cheb
from scipy import special

from .chebyshev import chebyshev_coefficients_of_function, enforce_parity, truncate_series
from .inverse_polynomial import InversePolynomial

__all__ = ["rectangle_polynomial", "window_inverse_polynomial"]


def rectangle_polynomial(kappa: float, *, degree: int | None = None,
                         transition: float | None = None,
                         sharpness: float | None = None) -> np.ndarray:
    """Even Chebyshev polynomial ``R`` with ``R ≈ 1`` for ``|x| ≥ 1/κ`` and ``R ≈ 0`` at 0.

    Parameters
    ----------
    kappa:
        Condition number; the default transition point is ``t = 1/(2κ)``.
    degree:
        Polynomial degree (even); defaults to ``8 κ`` which keeps the
        transition error below ~1e-3 for moderate ``κ``.
    transition / sharpness:
        Optional overrides of the erf surrogate parameters.
    """
    if kappa < 1.0:
        raise ValueError("kappa must be >= 1")
    t = transition if transition is not None else 1.0 / (2.0 * kappa)
    k = sharpness if sharpness is not None else 4.0 * kappa
    deg = degree if degree is not None else int(16 * np.ceil(kappa))
    deg = max(4, deg + (deg % 2))      # force an even degree

    def surrogate(x):
        return 1.0 + 0.5 * (special.erf(k * (x - t)) - special.erf(k * (x + t)))

    coeffs = chebyshev_coefficients_of_function(surrogate, deg, parity=0)
    return coeffs


def window_inverse_polynomial(inverse: InversePolynomial,
                              rectangle: np.ndarray | None = None,
                              *, truncation_tolerance: float | None = None
                              ) -> InversePolynomial:
    """Multiply an inverse polynomial by a rectangle window (Chebyshev product).

    The result remains odd (odd × even) and keeps the same ``inverse_scale``:
    on the spectral domain the window is ``≈ 1`` so the approximate inverse is
    unchanged there, while inside the gap the product is damped towards zero.
    """
    window = rectangle if rectangle is not None else rectangle_polynomial(inverse.kappa)
    window = enforce_parity(np.asarray(window, dtype=float), 0)
    product = _cheb.chebmul(np.asarray(inverse.coefficients, dtype=float), window)
    product = enforce_parity(product, 1)
    tol = truncation_tolerance if truncation_tolerance is not None else inverse.target_error / 10.0
    if tol > 0:
        product = truncate_series(product, tol)
    return InversePolynomial(
        coefficients=np.asarray(product, dtype=float),
        kappa=inverse.kappa,
        target_error=inverse.target_error,
        b_parameter=inverse.b_parameter,
        inverse_scale=inverse.inverse_scale,
        max_norm=inverse.max_norm,
    )
