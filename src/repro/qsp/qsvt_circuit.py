"""QSVT circuit construction (Eqs. (2)–(3) of the paper).

Given a block-encoding ``U`` of ``Ã`` with the "ancillas-all-zero" projector
``Π = |0^a><0^a| ⊗ I`` and a phase vector ``φ_1 .. φ_d``, the alternating
phase modulation sequence of the paper applies, to the input state, the
temporal sequence

    U, e^{iφ_d(2Π-I)}, U†, e^{iφ_{d-1}(2Π-I)}, U, ..., U, e^{iφ_1(2Π-I)}

(for odd ``d``; the even case differs only in ending with ``U†``).  Projecting
the ancillas back onto ``|0^a>`` yields ``P^{(SV)}(Ã)`` applied to the data
register, where ``P`` is the polynomial associated with the phases in the
*reflection* convention

    P(x) = [ Π_{k=1}^{d} e^{iφ_k Z} R(x) ]_{00},
    R(x) = [[x, sqrt(1-x²)], [sqrt(1-x²), -x]].

The phase-factor solver works in the more common ``W_x`` convention, so this
module also provides the exact conversion between the two: with
``R(x) = e^{-iπ/2} · e^{iαZ} W(x) e^{iβZ}`` for any ``α + β = π/2``, choosing
``β = θ_d`` gives

    φ_1 = θ_0 + θ_d - π/2,      φ_j = θ_{j-1} - π/2   (j = 2..d),

and the circuit block equals ``e^{-iπd/2} · P_wx(Ã)``; the residual global
phase is returned so backends can undo it classically (or absorb it in a
global-phase gate).

Since ``⟨0|U_wx(x, -θ)|0⟩ = conj(⟨0|U_wx(x, θ)|0⟩)`` for real ``x``, running
the circuit for both ``+θ`` and ``-θ`` and averaging the (unnormalised)
post-selected vectors implements the *real part* of the polynomial exactly —
which is what the linear solver needs, because the solver's target (Eq. (4))
is a real polynomial and only its real part can be represented by a single
QSP product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..blockencoding.base import BlockEncoding
from ..exceptions import DimensionError
from ..quantum import QuantumCircuit, Statevector
from ..quantum.measurement import postselect, postselect_batched
from ..quantum.plan import ExecutionPlan

__all__ = [
    "wx_to_circuit_phases",
    "projector_phase_gate",
    "build_qsvt_circuit",
    "QSVTApplication",
    "QSVTBatchApplication",
    "QSVTProgram",
    "compile_qsvt_program",
    "apply_qsvt_to_vector",
    "apply_qsvt_to_vectors",
]


# ---------------------------------------------------------------------- #
# phase conversion
# ---------------------------------------------------------------------- #
def wx_to_circuit_phases(wx_phases) -> tuple[np.ndarray, complex]:
    """Convert Wx-convention QSP phases to the circuit (reflection) convention.

    Parameters
    ----------
    wx_phases:
        Phase vector ``θ_0 .. θ_d`` (length ``d + 1``).

    Returns
    -------
    (circuit_phases, global_phase)
        ``circuit_phases`` has length ``d`` (``φ_1 .. φ_d`` of Eqs. (2)–(3))
        and ``global_phase`` is the factor ``e^{-iπd/2}`` by which the circuit
        block differs from the Wx polynomial; multiply results by its
        conjugate to undo it.
    """
    theta = np.asarray(wx_phases, dtype=float)
    if theta.ndim != 1 or theta.shape[0] < 2:
        raise DimensionError("wx_phases must contain at least two phases")
    d = theta.shape[0] - 1
    phi = np.empty(d)
    phi[0] = theta[0] + theta[d] - np.pi / 2.0
    if d > 1:
        phi[1:] = theta[1:d] - np.pi / 2.0
    global_phase = np.exp(-1j * np.pi * d / 2.0)
    return phi, complex(global_phase)


# ---------------------------------------------------------------------- #
# projector-controlled phase
# ---------------------------------------------------------------------- #
def projector_phase_gate(num_ancillas: int, angle: float) -> np.ndarray:
    """Diagonal matrix of ``e^{iφ(2Π-I)}`` restricted to the ancilla register.

    ``Π`` projects onto the all-zero ancilla state, so the operator is
    diagonal with ``e^{iφ}`` on index 0 and ``e^{-iφ}`` elsewhere; it acts as
    the identity on the data register and can therefore be applied as an
    ``num_ancillas``-qubit gate.
    """
    if num_ancillas < 1:
        raise DimensionError("need at least one ancilla qubit")
    diag = np.full(2**num_ancillas, np.exp(-1j * angle), dtype=complex)
    diag[0] = np.exp(1j * angle)
    return np.diag(diag)


def _append_projector_phase(circuit: QuantumCircuit, block: BlockEncoding,
                            angle: float, *, use_flag_qubit: bool) -> None:
    ancillas = list(range(block.num_ancillas))
    if not use_flag_qubit:
        circuit.unitary(projector_phase_gate(block.num_ancillas, angle),
                        qubits=ancillas, name="proj_phase")
        return
    flag = block.num_qubits            # the extra qubit appended after data
    zeros = [0] * block.num_ancillas
    circuit.mcx(ancillas, flag, control_states=zeros)
    circuit.rz(2.0 * angle, flag)
    circuit.mcx(ancillas, flag, control_states=zeros)


# ---------------------------------------------------------------------- #
# circuit construction
# ---------------------------------------------------------------------- #
def build_qsvt_circuit(block: BlockEncoding, circuit_phases, *,
                       dense_block_encoding: bool = True,
                       use_flag_qubit: bool = False) -> QuantumCircuit:
    """Assemble the QSVT circuit for the given block-encoding and phases.

    Parameters
    ----------
    block:
        Block-encoding of the matrix the polynomial acts on.
    circuit_phases:
        Phases ``φ_1 .. φ_d`` in the circuit (reflection) convention — use
        :func:`wx_to_circuit_phases` to obtain them from Wx phases.
    dense_block_encoding:
        When ``True`` (default) the block-encoding is inserted as a single
        dense unitary gate (fast to simulate); otherwise its gate-level
        circuit is inlined (meaningful resource counts).
    use_flag_qubit:
        Implement each projector phase with the explicit
        MCX–RZ–MCX construction on an extra flag qubit instead of a diagonal
        ancilla-register gate.
    """
    phases = np.asarray(circuit_phases, dtype=float)
    if phases.ndim != 1 or phases.shape[0] < 1:
        raise DimensionError("circuit_phases must contain at least one phase")
    d = phases.shape[0]
    num_qubits = block.num_qubits + (1 if use_flag_qubit else 0)
    qc = QuantumCircuit(num_qubits, name=f"qsvt(d={d})")
    all_block_qubits = list(range(block.num_qubits))

    if dense_block_encoding:
        be_unitary = block.unitary()
        be_dagger = be_unitary.conj().T

        def append_be(adjoint: bool) -> None:
            qc.unitary(be_dagger if adjoint else be_unitary, qubits=all_block_qubits,
                       name="BE†" if adjoint else "BE")
    else:
        be_circuit = block.circuit()
        be_inverse = be_circuit.inverse()

        def append_be(adjoint: bool) -> None:
            qc.compose(be_inverse if adjoint else be_circuit,
                       qubit_map=all_block_qubits)

    # temporal sequence: U, phase(φ_d), U†, phase(φ_{d-1}), ..., ending with phase(φ_1)
    for step in range(d):
        append_be(adjoint=(step % 2 == 1))
        angle = float(phases[d - 1 - step])
        _append_projector_phase(qc, block, angle, use_flag_qubit=use_flag_qubit)
    return qc


# ---------------------------------------------------------------------- #
# high-level application helper
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class QSVTApplication:
    """Result of applying a QSVT polynomial to a data vector.

    Attributes
    ----------
    vector:
        The (unnormalised) transformed data vector ``Re(P)(Ã) · v``.
    success_probability:
        Probability of finding the block-encoding ancillas in ``|0..0>``
        (averaged over the ``±θ`` runs).
    block_encoding_calls:
        Number of calls to the block-encoding or its adjoint that the
        application required (``d`` per run, ``2d`` when both signs are run).
    circuit_depth:
        Logical depth of one QSVT circuit.
    """

    vector: np.ndarray
    success_probability: float
    block_encoding_calls: int
    circuit_depth: int


class QSVTProgram:
    """Compiled QSVT application: one :class:`~repro.quantum.plan.ExecutionPlan`
    per phase sign, replayable against any right-hand side.

    Built by :func:`compile_qsvt_program`.  Compilation (circuit assembly +
    gate fusion) happens once; :meth:`apply` and :meth:`apply_batch` only
    replay the fused contraction sequences — this is the object
    :class:`repro.core.backends.CircuitQSVTBackend` stores at ``prepare()``
    time and the compiled-solver cache keeps alive across requests.
    """

    def __init__(self, *, num_qubits: int, num_ancillas: int, dimension: int,
                 plans: Sequence[ExecutionPlan],
                 global_phases: Sequence[complex],
                 block_encoding_calls_per_run: int, circuit_depth: int) -> None:
        if len(plans) != len(global_phases):
            raise DimensionError("one global phase is required per plan")
        self.num_qubits = int(num_qubits)
        self.num_ancillas = int(num_ancillas)
        self.dimension = int(dimension)
        self.plans = tuple(plans)
        self.global_phases = tuple(complex(p) for p in global_phases)
        self.block_encoding_calls_per_run = int(block_encoding_calls_per_run)
        self.circuit_depth = int(circuit_depth)

    # ------------------------------------------------------------------ #
    @property
    def num_runs(self) -> int:
        """Circuit runs per application (2 when the real part is taken)."""
        return len(self.plans)

    @property
    def block_encoding_calls(self) -> int:
        """Block-encoding (and adjoint) calls per application."""
        return self.block_encoding_calls_per_run * self.num_runs

    @property
    def contractions_per_sweep(self) -> int:
        """Tensor contractions one application performs (all runs)."""
        return sum(plan.num_contractions for plan in self.plans)

    @property
    def source_gates_per_sweep(self) -> int:
        """Circuit gates the unfused per-gate loop would apply (all runs)."""
        return sum(plan.source_gate_count for plan in self.plans)

    def payload_bytes(self) -> int:
        """Bytes held by the compiled plans (for byte-accounted caches)."""
        return sum(plan.payload_bytes() for plan in self.plans)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"QSVTProgram(num_qubits={self.num_qubits}, runs={self.num_runs}, "
                f"contractions={self.contractions_per_sweep}, "
                f"gates={self.source_gates_per_sweep})")

    # ------------------------------------------------------------------ #
    def _normalised(self, data_vector) -> np.ndarray:
        data = np.asarray(data_vector, dtype=complex)
        if data.shape[-1] != self.dimension:
            raise DimensionError(
                f"data vector length {data.shape[-1]} does not match the encoded "
                f"dimension {self.dimension}")
        norms = np.linalg.norm(data, axis=-1)
        if np.any(norms == 0.0):
            raise DimensionError("cannot apply the QSVT to a zero vector")
        return data / (norms[..., None] if data.ndim == 2 else norms)

    def apply(self, data_vector) -> QSVTApplication:
        """Replay the compiled plans on one data vector (see module docstring)."""
        data = self._normalised(np.asarray(data_vector, dtype=complex).reshape(-1))
        accumulated = np.zeros(self.dimension, dtype=complex)
        probability = 0.0
        ancilla_qubits = list(range(self.num_ancillas))
        for plan, global_phase in zip(self.plans, self.global_phases):
            # initial state |0^a> ⊗ data
            full = np.zeros(2**self.num_qubits, dtype=complex)
            full[: self.dimension] = data
            output = Statevector(plan.apply(full))
            projected, prob = postselect(output, ancilla_qubits, 0,
                                         renormalize=False)
            accumulated += np.conj(global_phase) * projected.data
            probability += prob
        accumulated /= self.num_runs
        probability /= self.num_runs
        return QSVTApplication(vector=accumulated,
                               success_probability=float(probability),
                               block_encoding_calls=self.block_encoding_calls,
                               circuit_depth=self.circuit_depth)

    def apply_batch(self, data_vectors) -> QSVTBatchApplication:
        """Replay the compiled plans on a ``(B, N)`` stack in one sweep per run."""
        data = np.asarray(data_vectors, dtype=complex)
        if data.ndim != 2:
            raise DimensionError(
                f"data_vectors must be a (B, N) stack, got shape {data.shape}")
        if data.shape[0] < 1:
            raise DimensionError("data_vectors must contain at least one vector")
        data = self._normalised(data)
        batch_size = data.shape[0]
        accumulated = np.zeros((batch_size, self.dimension), dtype=complex)
        probabilities = np.zeros(batch_size)
        ancilla_qubits = list(range(self.num_ancillas))
        for plan, global_phase in zip(self.plans, self.global_phases):
            # initial batch |0^a> ⊗ data_i, one row per vector
            full = np.zeros((batch_size, 2**self.num_qubits), dtype=complex)
            full[:, : self.dimension] = data
            output = plan.apply_batched(full)
            projected, probs = postselect_batched(output, ancilla_qubits, 0,
                                                  renormalize=False)
            accumulated += np.conj(global_phase) * projected
            probabilities += probs
        accumulated /= self.num_runs
        probabilities /= self.num_runs
        return QSVTBatchApplication(vectors=accumulated,
                                    success_probabilities=probabilities,
                                    block_encoding_calls=self.block_encoding_calls,
                                    circuit_depth=self.circuit_depth)


def compile_qsvt_program(block: BlockEncoding, wx_phases, *,
                         real_part: bool = True,
                         dense_block_encoding: bool = True,
                         fusion: str | None = None,
                         max_fused_qubits: int | None = None) -> QSVTProgram:
    """Compile the QSVT application for ``(block, wx_phases)`` into a program.

    One circuit is assembled per phase sign (both signs when ``real_part`` is
    on, see the module docstring) and lowered to a fused
    :class:`~repro.quantum.plan.ExecutionPlan`; the QSVT alternation of
    block-encoding layers and ancilla-diagonal projector phases collapses
    into far fewer contractions than gates.  ``fusion``/``max_fused_qubits``
    are forwarded to :func:`repro.quantum.plan.compile_plan` (``"none"``
    keeps one op per gate — the reference the fused program is tested
    against).
    """
    theta = np.asarray(wx_phases, dtype=float)
    sign_list = [1.0, -1.0] if real_part else [1.0]
    plans: list[ExecutionPlan] = []
    global_phases: list[complex] = []
    depth = 0
    calls_per_run = 0
    for sign in sign_list:
        phases, global_phase = wx_to_circuit_phases(sign * theta)
        circuit = build_qsvt_circuit(block, phases,
                                     dense_block_encoding=dense_block_encoding)
        depth = max(depth, circuit.depth())
        calls_per_run = phases.shape[0]
        plans.append(circuit.compile(fusion=fusion,
                                     max_fused_qubits=max_fused_qubits))
        global_phases.append(global_phase)
    return QSVTProgram(num_qubits=block.num_qubits,
                       num_ancillas=block.num_ancillas,
                       dimension=block.dimension,
                       plans=plans, global_phases=global_phases,
                       block_encoding_calls_per_run=calls_per_run,
                       circuit_depth=depth)


def apply_qsvt_to_vector(block: BlockEncoding, wx_phases, data_vector, *,
                         real_part: bool = True,
                         dense_block_encoding: bool = True,
                         fusion: str | None = None) -> QSVTApplication:
    """Apply ``Re(P_wx)`` (or ``P_wx``) of the encoded matrix to ``data_vector``.

    The data vector is normalised, loaded next to ``|0^a>`` ancillas, run
    through the QSVT circuit, and the ancillas are post-selected on
    ``|0..0>``.  When ``real_part`` is ``True`` the procedure is repeated with
    negated phases and the two (unnormalised) outcomes are averaged, which
    realises the real part of the polynomial exactly (see module docstring).

    The execution compiles a :class:`QSVTProgram` and replays it; thanks to
    the process-wide plan cache a repeated call with the same block and
    phases skips the fusion pass.  Callers holding many right-hand sides
    should compile once via :func:`compile_qsvt_program` (this is what the
    circuit backend does).

    Returns the *unnormalised* transformed vector: its norm carries the
    success amplitude, which the linear solver uses only through the
    direction (the scale is recovered classically, Remark 2 of the paper).
    """
    program = compile_qsvt_program(block, wx_phases, real_part=real_part,
                                   dense_block_encoding=dense_block_encoding,
                                   fusion=fusion)
    return program.apply(data_vector)


# ---------------------------------------------------------------------- #
# batched application
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class QSVTBatchApplication:
    """Result of applying one QSVT polynomial to a stack of data vectors.

    Attributes
    ----------
    vectors:
        The (unnormalised) transformed vectors, shape ``(B, N)``; row ``i`` is
        ``Re(P)(Ã) · v_i``.
    success_probabilities:
        Per-vector ancilla post-selection probability (length ``B``).
    block_encoding_calls:
        Block-encoding (and adjoint) calls consumed *per vector* — the batch
        shares one circuit sweep, so the total sweep cost is the same as a
        single-vector application.
    circuit_depth:
        Logical depth of one QSVT circuit.
    """

    vectors: np.ndarray
    success_probabilities: np.ndarray
    block_encoding_calls: int
    circuit_depth: int

    @property
    def batch_size(self) -> int:
        """Number of vectors in the batch."""
        return self.vectors.shape[0]


def apply_qsvt_to_vectors(block: BlockEncoding, wx_phases, data_vectors, *,
                          real_part: bool = True,
                          dense_block_encoding: bool = True,
                          fusion: str | None = None) -> QSVTBatchApplication:
    """Apply ``Re(P_wx)`` of the encoded matrix to ``B`` vectors in one sweep.

    Batched analogue of :func:`apply_qsvt_to_vector`: the ``B`` (normalised)
    data vectors are stacked into a ``(B, 2**q)`` amplitude array next to
    ``|0^a>`` ancillas and the compiled :class:`QSVTProgram` sweeps the whole
    stack once per phase sign — every fused contraction updates all ``B``
    states — before row-wise ancilla post-selection
    (:func:`~repro.quantum.measurement.postselect_batched`).  This is the
    engine behind the multi-right-hand-side solve of
    :meth:`repro.core.backends.CircuitQSVTBackend.apply_inverse_batch`: one
    plan sweep for the whole batch instead of ``B`` sweeps.

    Parameters
    ----------
    data_vectors:
        Array-like of shape ``(B, N)`` with ``N = block.dimension`` (a single
        vector must go through :func:`apply_qsvt_to_vector`).

    Returns the *unnormalised* transformed vectors, exactly like the
    single-vector version.
    """
    program = compile_qsvt_program(block, wx_phases, real_part=real_part,
                                   dense_block_encoding=dense_block_encoding,
                                   fusion=fusion)
    return program.apply_batch(data_vectors)
