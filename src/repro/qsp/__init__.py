"""Quantum Signal Processing / Quantum Singular Value Transformation machinery.

This sub-package implements everything between "a condition number and a
target accuracy" and "a quantum circuit that applies an approximate matrix
inverse":

* Chebyshev-series utilities (:mod:`repro.qsp.chebyshev`);
* the odd polynomial approximation of ``1/x`` from Eq. (4) of the paper
  (:mod:`repro.qsp.inverse_polynomial`) and the even rectangle window used to
  tame it inside the spectral gap (:mod:`repro.qsp.rectangle`);
* a symmetric-QSP phase-factor solver (:mod:`repro.qsp.phase_factors`),
  following the fixed-point/Newton approach of Dong et al. (Ref. [13]);
* the QSVT circuit builder implementing the alternating phase modulation of
  Eqs. (2)–(3) (:mod:`repro.qsp.qsvt_circuit`), together with the conversion
  between the Wx QSP convention used by the solver and the
  projector-controlled-phase convention used by the circuit;
* validation helpers comparing the circuit against the exact singular-value
  transformation (:mod:`repro.qsp.validation`).
"""

from .chebyshev import (
    chebyshev_coefficients_of_function,
    evaluate_chebyshev,
    parity_of_series,
    scale_series_to_max,
    truncate_series,
)
from .inverse_polynomial import (
    InversePolynomial,
    build_inverse_polynomial,
    inverse_polynomial_degree,
    inverse_polynomial_parameters,
    raw_inverse_coefficients,
)
from .rectangle import rectangle_polynomial, window_inverse_polynomial
from .phase_factors import PhaseFactorResult, qsp_polynomial_values, solve_qsp_phases
from .qsvt_circuit import (
    QSVTProgram,
    apply_qsvt_to_vector,
    apply_qsvt_to_vectors,
    build_qsvt_circuit,
    compile_qsvt_program,
    projector_phase_gate,
    wx_to_circuit_phases,
)
from .validation import apply_polynomial_via_svd, qsvt_transform_error

__all__ = [
    "evaluate_chebyshev",
    "chebyshev_coefficients_of_function",
    "truncate_series",
    "parity_of_series",
    "scale_series_to_max",
    "InversePolynomial",
    "build_inverse_polynomial",
    "inverse_polynomial_parameters",
    "inverse_polynomial_degree",
    "raw_inverse_coefficients",
    "rectangle_polynomial",
    "window_inverse_polynomial",
    "PhaseFactorResult",
    "solve_qsp_phases",
    "qsp_polynomial_values",
    "wx_to_circuit_phases",
    "build_qsvt_circuit",
    "projector_phase_gate",
    "QSVTProgram",
    "compile_qsvt_program",
    "apply_qsvt_to_vector",
    "apply_qsvt_to_vectors",
    "apply_polynomial_via_svd",
    "qsvt_transform_error",
]
