"""Validation helpers: exact singular-value transforms and circuit comparison.

The *ideal* singular value transformation of a matrix ``M = U Σ V†`` by an odd
polynomial ``P`` is ``P^{(SV)}(M) = U P(Σ) V†`` (Sec. II-A2 of the paper); this
module computes it directly from the SVD so that the circuit-level QSVT can be
checked against it (and so the ideal-polynomial backend can use it at
condition numbers where phase factors become impractical).
"""

from __future__ import annotations

import numpy as np

from ..blockencoding.base import BlockEncoding
from ..utils import check_square
from .chebyshev import evaluate_chebyshev
from .qsvt_circuit import apply_qsvt_to_vector

__all__ = ["apply_polynomial_via_svd", "qsvt_transform_error"]


def apply_polynomial_via_svd(matrix, cheb_coeffs, *, parity: int | None = None) -> np.ndarray:
    """Exact generalised matrix polynomial ``P^{(SV)}(M)`` from the SVD of ``M``.

    For an odd polynomial the result is ``U P(Σ) V†``; for an even polynomial
    it is ``V P(Σ) V†`` (the convention of Sec. II-A2).  The parity is
    inferred from the coefficients when not given.
    """
    mat = check_square(np.asarray(matrix, dtype=complex), name="matrix")
    coeffs = np.asarray(cheb_coeffs, dtype=float)
    if parity is None:
        odd_mass = float(np.abs(coeffs[1::2]).sum())
        even_mass = float(np.abs(coeffs[0::2]).sum())
        parity = 1 if odd_mass >= even_mass else 0
    u, sigma, vh = np.linalg.svd(mat)
    transformed = evaluate_chebyshev(coeffs, sigma)
    if parity == 1:
        return (u * transformed) @ vh
    return (vh.conj().T * transformed) @ vh


def qsvt_transform_error(block: BlockEncoding, wx_phases, cheb_coeffs, *,
                         num_probes: int | None = None, rng=None) -> float:
    """Worst-case error between the circuit QSVT and the exact SVD transform.

    Applies both the circuit (via :func:`apply_qsvt_to_vector`, real-part
    extraction enabled) and the exact ``P^{(SV)}(A/α)`` to a set of probe
    vectors (all canonical basis vectors by default) and returns the maximum
    Euclidean mismatch.  Used by the integration tests to validate the whole
    phase-factor + circuit pipeline.
    """
    from ..utils import as_generator

    matrix_scaled = block.matrix_encoded / block.alpha
    exact = apply_polynomial_via_svd(matrix_scaled, cheb_coeffs, parity=1)
    dimension = block.dimension
    if num_probes is None or num_probes >= dimension:
        probes = np.eye(dimension)
    else:
        gen = as_generator(rng)
        probes = gen.standard_normal((dimension, num_probes))
        probes /= np.linalg.norm(probes, axis=0)
    worst = 0.0
    for k in range(probes.shape[1]):
        probe = probes[:, k]
        application = apply_qsvt_to_vector(block, wx_phases, probe, real_part=True)
        reference = exact @ (probe / np.linalg.norm(probe))
        worst = max(worst, float(np.linalg.norm(application.vector - reference)))
    return worst
