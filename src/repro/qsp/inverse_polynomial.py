"""Odd Chebyshev approximation of the inverse function (Eq. (4) of the paper).

Following Childs–Kothari–Somma and Gilyén et al. (Ref. [15]), the function

.. math::  f_{\\varepsilon,\\kappa}(x) = \\frac{1 - (1 - x^2)^b}{x},
           \\qquad b(\\varepsilon, \\kappa) = \\lceil \\kappa^2 \\log(\\kappa/\\varepsilon) \\rceil

is an ``ε``-approximation of ``1/x`` on ``[-1, -1/κ] ∪ [1/κ, 1]`` and admits
the explicit odd Chebyshev expansion

.. math::  f = 4 \\sum_{j=0}^{b-1} (-1)^j
           \\Big[ 2^{-2b} \\sum_{i=j+1}^{b} \\binom{2b}{b+i} \\Big] T_{2j+1}(x),

which can be truncated after ``D(ε, κ) = ⌈\\sqrt{b \\log(4b/ε)}⌉`` terms at the
cost of an extra ``ε`` error (Eq. (4)).  The bracketed coefficient is the
binomial tail probability ``Pr[X ≥ b+j+1]`` for ``X ~ Binomial(2b, 1/2)``,
which is what :func:`raw_inverse_coefficients` evaluates (via
``scipy.stats.binom.sf``) so the construction stays numerically stable for the
very large ``b`` arising at large condition numbers.

The resulting polynomial has magnitude up to ``O(√b)`` near the origin, so for
QSVT use it must be rescaled below one; :class:`InversePolynomial` records the
rescaling factor so the solver can undo it classically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats

from ..exceptions import DimensionError
from .chebyshev import evaluate_chebyshev, max_abs_on_interval, truncate_series

__all__ = [
    "inverse_polynomial_parameters",
    "inverse_polynomial_degree",
    "raw_inverse_coefficients",
    "InversePolynomial",
    "build_inverse_polynomial",
    "polynomial_error_from_solution_accuracy",
]


def inverse_polynomial_parameters(kappa: float, epsilon: float) -> tuple[int, int]:
    """Return ``(b, D)`` of Eq. (4) for condition number ``κ`` and error ``ε``."""
    if kappa <= 1.0:
        kappa = 1.0 + 1e-12
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must be in (0, 1)")
    b = int(np.ceil(kappa**2 * np.log(kappa / epsilon)))
    b = max(b, 1)
    d_trunc = int(np.ceil(np.sqrt(b * np.log(4.0 * b / epsilon))))
    d_trunc = min(max(d_trunc, 1), b)
    return b, d_trunc


def inverse_polynomial_degree(kappa: float, epsilon: float) -> int:
    """Degree ``2D + 1`` of the truncated inverse polynomial."""
    _, d_trunc = inverse_polynomial_parameters(kappa, epsilon)
    return 2 * d_trunc + 1


def raw_inverse_coefficients(kappa: float, epsilon: float,
                             *, max_degree: int | None = None) -> np.ndarray:
    """Chebyshev coefficients of the truncated expansion of ``f_{ε,κ}``.

    Returns the full coefficient vector (even entries are zero); the
    polynomial approximates ``1/x`` on ``[-1,-1/κ] ∪ [1/κ,1]`` with error at
    most ``2ε`` (``ε`` from the integral representation plus ``ε`` from the
    truncation).

    Parameters
    ----------
    max_degree:
        Optional hard cap on the polynomial degree (used by degree-budgeted
        constructions); the truncation error then grows accordingly.
    """
    b, d_trunc = inverse_polynomial_parameters(kappa, epsilon)
    if max_degree is not None:
        if max_degree < 1:
            raise ValueError("max_degree must be >= 1")
        d_trunc = min(d_trunc, max(0, (max_degree - 1) // 2))
    j = np.arange(d_trunc + 1)
    # 2^{-2b} * sum_{i=j+1}^{b} C(2b, b+i) = Pr[X >= b + j + 1], X ~ Bin(2b, 1/2)
    tail = stats.binom.sf(b + j, 2 * b, 0.5)
    magnitudes = 4.0 * ((-1.0) ** j) * tail
    coefficients = np.zeros(2 * d_trunc + 2)
    coefficients[1::2] = magnitudes
    return coefficients


def polynomial_error_from_solution_accuracy(epsilon_l: float, kappa: float,
                                            convention: str = "conservative") -> float:
    """Map a target solution accuracy ``ε_l`` to a polynomial approximation error.

    Sec. III-A of the paper states that a relative solution error of order
    ``ε_l`` requires approximating the inverse on the spectral domain with
    error ``ε' = O(ε_l / κ)``; the ``"conservative"`` convention uses exactly
    ``ε_l / (2κ)``, while ``"direct"`` uses ``ε_l / 2`` (sufficient when the
    matrix is normalised so that ``σ_max = 1``, see the module docstring of
    :mod:`repro.core.qsvt_solver`).
    """
    if convention == "conservative":
        return float(epsilon_l) / (2.0 * float(kappa))
    if convention == "direct":
        return float(epsilon_l) / 2.0
    raise ValueError("convention must be 'conservative' or 'direct'")


@dataclass(frozen=True)
class InversePolynomial:
    """A (possibly rescaled) odd polynomial approximation of ``1/x``.

    The stored polynomial satisfies ``P(x) ≈ inverse_scale / x`` on
    ``[-1, -1/κ] ∪ [1/κ, 1]`` and ``|P(x)| <= max_norm`` on ``[-1, 1]`` when a
    rescaling was requested.

    Attributes
    ----------
    coefficients:
        Chebyshev coefficients of the stored polynomial.
    kappa:
        Condition number the polynomial was built for.
    target_error:
        Approximation error ``ε`` requested for the *unscaled* inverse.
    b_parameter:
        The exponent ``b(ε, κ)`` of Eq. (4).
    inverse_scale:
        Factor ``s`` such that ``P(x) ≈ s / x`` on the spectral domain;
        dividing the output of the singular value transformation by ``s``
        recovers the unscaled inverse.
    max_norm:
        Requested sup-norm bound (``None`` when no rescaling was applied).
    """

    coefficients: np.ndarray
    kappa: float
    target_error: float
    b_parameter: int
    inverse_scale: float
    max_norm: float | None = None
    _max_abs: float = field(default=float("nan"), repr=False)

    # ------------------------------------------------------------------ #
    @property
    def degree(self) -> int:
        """Polynomial degree (index of the last nonzero Chebyshev coefficient)."""
        coeffs = np.asarray(self.coefficients)
        nonzero = np.nonzero(np.abs(coeffs) > 0)[0]
        return int(nonzero[-1]) if nonzero.size else 0

    @property
    def parity(self) -> int:
        """Parity of the polynomial (always 1: the inverse approximation is odd)."""
        return 1

    @property
    def num_block_encoding_calls(self) -> int:
        """Calls to the block-encoding (and its adjoint) per QSVT application."""
        return self.degree

    def evaluate(self, x) -> np.ndarray:
        """Evaluate ``P(x)``."""
        return evaluate_chebyshev(self.coefficients, x)

    def apply_inverse(self, x) -> np.ndarray:
        """Evaluate the *unscaled* approximate inverse ``P(x) / inverse_scale``."""
        return self.evaluate(x) / self.inverse_scale

    def max_abs(self) -> float:
        """Maximum of ``|P|`` on ``[-1, 1]`` (computed once, then cached)."""
        if np.isnan(self._max_abs):
            object.__setattr__(self, "_max_abs", max_abs_on_interval(self.coefficients))
        return self._max_abs

    def relative_inverse_error(self, *, num_points: int = 2001) -> float:
        """Measured ``max |x · P(x)/s − 1|`` over ``[1/κ, 1]``.

        This is the *achieved* relative accuracy of the approximate inverse on
        the spectral domain — the quantity that plays the role of ``ε_l`` in
        the refinement analysis (used by the Figure-4 benchmark where the
        paper lets the construction determine ``ε_l``).
        """
        grid = np.linspace(1.0 / self.kappa, 1.0, num_points)
        values = self.apply_inverse(grid)
        return float(np.max(np.abs(grid * values - 1.0)))


def build_inverse_polynomial(kappa: float, epsilon: float, *,
                             max_norm: float | None = None,
                             truncation_tolerance: float | None = None,
                             max_degree: int | None = None) -> InversePolynomial:
    """Construct the Eq. (4) polynomial, optionally rescaled for QSVT use.

    Parameters
    ----------
    kappa:
        Condition number of the (sub-normalised) matrix; the polynomial
        approximates the inverse on ``[-1, -1/κ] ∪ [1/κ, 1]``.
    epsilon:
        Approximation error of the *unscaled* inverse on that domain.
    max_norm:
        When given (e.g. 0.9), rescale the polynomial so that its sup-norm on
        ``[-1, 1]`` equals ``max_norm`` — required before feeding it to the
        QSP phase-factor solver.  ``None`` keeps the unscaled polynomial
        (``inverse_scale = 1``), which is what the ideal-polynomial backend
        uses.
    truncation_tolerance:
        Extra coefficient truncation applied after the analytic construction;
        defaults to ``epsilon / 10``.
    max_degree:
        Optional hard cap on the degree (degree-budgeted construction).
    """
    if kappa < 1.0:
        raise DimensionError("kappa must be >= 1")
    b, _ = inverse_polynomial_parameters(kappa, epsilon)
    coefficients = raw_inverse_coefficients(kappa, epsilon, max_degree=max_degree)
    tol = truncation_tolerance if truncation_tolerance is not None else epsilon / 10.0
    if tol > 0:
        coefficients = truncate_series(coefficients, tol)
        if coefficients.shape[0] % 2 == 1:
            # keep an odd degree (trailing even coefficient slot is zero anyway)
            coefficients = np.append(coefficients, 0.0)
    if max_norm is not None:
        current_max = max_abs_on_interval(coefficients)
        factor = max_norm / current_max
        coefficients = coefficients * factor
        scale = factor
        stored_max = max_norm
    else:
        scale = 1.0
        stored_max = float("nan")
    poly = InversePolynomial(
        coefficients=np.asarray(coefficients, dtype=float),
        kappa=float(kappa),
        target_error=float(epsilon),
        b_parameter=int(b),
        inverse_scale=float(scale),
        max_norm=max_norm,
        _max_abs=stored_max,
    )
    return poly
