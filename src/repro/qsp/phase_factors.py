"""Symmetric-QSP phase-factor solver.

Given a real target polynomial ``f`` of definite parity with ``|f| < 1`` on
``[-1, 1]`` (expressed by its Chebyshev coefficients), this module finds a
*symmetric* phase vector ``θ = (θ_0, ..., θ_d)`` such that, in the standard
``W_x`` convention of quantum signal processing,

.. math::

    U(x, θ) = e^{iθ_0 Z} \\prod_{k=1}^{d} \\big[ W(x)\\, e^{iθ_k Z} \\big],
    \\qquad W(x) = \\begin{pmatrix} x & i\\sqrt{1-x^2} \\\\ i\\sqrt{1-x^2} & x \\end{pmatrix},

satisfies ``Re⟨0|U(x, θ)|0⟩ = f(x)``.  The solver follows the fixed-point /
quasi-Newton strategy of Dong, Meng, Whaley & Lin (and its refinement in
Ref. [13] of the paper): phases are parametrised as symmetric deviations
around the trivial point ``(π/4, 0, ..., 0, π/4)`` — where the target map
vanishes and its Jacobian is essentially ``2·I`` — and the nonlinear system
"Chebyshev coefficients of ``Re⟨0|U|0⟩`` = target coefficients" is solved by a
chord/Newton iteration whose Jacobian is evaluated numerically by finite
differences (re-evaluated only when the iteration stalls).

The forward map evaluation is vectorised over Chebyshev nodes, so one
evaluation costs ``O(d²)`` scalar work and solving for a degree-300 polynomial
takes on the order of a second.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.polynomial import chebyshev as _cheb

from ..exceptions import PhaseFactorError
from .chebyshev import chebyshev_nodes

__all__ = ["PhaseFactorResult", "qsp_polynomial_values", "solve_qsp_phases"]


# ---------------------------------------------------------------------- #
# forward map
# ---------------------------------------------------------------------- #
def qsp_polynomial_values(phases, x) -> np.ndarray:
    """Complex values ``P(x) = ⟨0|U(x, θ)|0⟩`` of the Wx-convention QSP product.

    Parameters
    ----------
    phases:
        Full phase vector ``θ`` of length ``d + 1``.
    x:
        Scalar or array of points in ``[-1, 1]``.
    """
    theta = np.asarray(phases, dtype=float)
    xs = np.atleast_1d(np.asarray(x, dtype=float))
    s = np.sqrt(np.clip(1.0 - xs**2, 0.0, None))
    m = xs.shape[0]
    w = np.zeros((m, 2, 2), dtype=complex)
    w[:, 0, 0] = xs
    w[:, 1, 1] = xs
    w[:, 0, 1] = 1j * s
    w[:, 1, 0] = 1j * s
    # running product, initialised with e^{i θ_0 Z}
    product = np.zeros((m, 2, 2), dtype=complex)
    phase0 = np.exp(1j * theta[0])
    product[:, 0, 0] = phase0
    product[:, 1, 1] = np.conj(phase0)
    for angle in theta[1:]:
        product = product @ w
        phase = np.exp(1j * angle)
        product[:, :, 0] *= phase
        product[:, :, 1] *= np.conj(phase)
    values = product[:, 0, 0]
    if np.isscalar(x) or np.asarray(x).ndim == 0:
        return values[0]
    return values


def _symmetric_full_phases(reduced: np.ndarray, degree: int) -> np.ndarray:
    """Full symmetric phase vector from reduced deviations around the trivial point."""
    d = degree
    length = d + 1
    half = (length + 1) // 2
    full = np.zeros(length)
    full[:half] = reduced
    full[length - half:] = reduced[::-1]
    full[0] += np.pi / 4
    full[-1] += np.pi / 4
    return full


def _target_coefficients(cheb_coeffs: np.ndarray, degree: int, parity: int) -> np.ndarray:
    """Pad/trim the target Chebyshev coefficients and keep the parity entries."""
    coeffs = np.zeros(degree + 1)
    src = np.asarray(cheb_coeffs, dtype=float)
    coeffs[: min(src.shape[0], degree + 1)] = src[: degree + 1]
    return coeffs[parity::2]


class _ForwardMap:
    """Callable evaluating the parity Chebyshev coefficients of ``Re⟨0|U|0⟩``."""

    def __init__(self, degree: int, parity: int) -> None:
        self.degree = degree
        self.parity = parity
        self.nodes = chebyshev_nodes(degree + 1)
        vander = _cheb.chebvander(self.nodes, degree)       # (M, degree+1)
        m = self.nodes.shape[0]
        weights = np.full(degree + 1, 2.0 / m)
        weights[0] = 1.0 / m
        # transform matrix: coefficients = T @ values
        self.transform = (vander * weights).T
        self.parity_rows = np.arange(parity, degree + 1, 2)

    def __call__(self, reduced: np.ndarray) -> np.ndarray:
        full = _symmetric_full_phases(reduced, self.degree)
        values = np.real(qsp_polynomial_values(full, self.nodes))
        coeffs = self.transform @ values
        return coeffs[self.parity_rows]


# ---------------------------------------------------------------------- #
# result container
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class PhaseFactorResult:
    """Outcome of :func:`solve_qsp_phases`.

    Attributes
    ----------
    phases:
        Full symmetric Wx-convention phase vector (length ``degree + 1``).
    degree / parity:
        Degree and parity of the represented polynomial.
    residual:
        Final sup-norm mismatch between the represented and target Chebyshev
        coefficients.
    iterations:
        Number of (quasi-)Newton iterations performed.
    converged:
        Whether ``residual <= tolerance``.
    jacobian_refreshes:
        How many times the Jacobian was recomputed (0 = pure chord iteration).
    """

    phases: np.ndarray
    degree: int
    parity: int
    residual: float
    iterations: int
    converged: bool
    jacobian_refreshes: int = 0


# ---------------------------------------------------------------------- #
# solver
# ---------------------------------------------------------------------- #
def _numerical_jacobian(forward: _ForwardMap, point: np.ndarray,
                        step: float = 1e-7) -> np.ndarray:
    base = forward(point)
    jac = np.zeros((base.shape[0], point.shape[0]))
    for k in range(point.shape[0]):
        shifted = point.copy()
        shifted[k] += step
        jac[:, k] = (forward(shifted) - base) / step
    return jac


def solve_qsp_phases(cheb_coeffs, *, tolerance: float = 1e-12,
                     max_iterations: int = 200, max_jacobian_refreshes: int = 4,
                     raise_on_failure: bool = True) -> PhaseFactorResult:
    """Find symmetric Wx phases representing a real Chebyshev target.

    Parameters
    ----------
    cheb_coeffs:
        Chebyshev coefficients of the target polynomial.  It must have
        definite parity and sup-norm strictly below one on ``[-1, 1]``
        (rescale it first, e.g. with
        :func:`repro.qsp.chebyshev.scale_series_to_max`).
    tolerance:
        Convergence threshold on the sup-norm coefficient mismatch.
    max_iterations:
        Total iteration budget (chord + Newton steps).
    max_jacobian_refreshes:
        How many times the Jacobian may be recomputed when progress stalls.
    raise_on_failure:
        Raise :class:`PhaseFactorError` when the target accuracy is not met
        (otherwise the best iterate is returned with ``converged=False``).

    Returns
    -------
    PhaseFactorResult
    """
    coeffs = np.asarray(cheb_coeffs, dtype=float)
    if coeffs.ndim != 1 or coeffs.shape[0] < 1:
        raise PhaseFactorError("cheb_coeffs must be a non-empty 1-D array")
    nonzero = np.nonzero(np.abs(coeffs) > 0.0)[0]
    if nonzero.size == 0:
        raise PhaseFactorError("target polynomial is identically zero")
    degree = int(nonzero[-1])
    parity = degree % 2
    opposite = coeffs[(1 - parity)::2]
    if np.max(np.abs(opposite)) > 1e-12 * max(1.0, np.max(np.abs(coeffs))):
        raise PhaseFactorError("target polynomial must have definite parity")

    forward = _ForwardMap(degree, parity)
    target = _target_coefficients(coeffs, degree, parity)
    grid = np.cos(np.linspace(0.0, np.pi, 4 * (degree + 1)))
    if float(np.max(np.abs(_cheb.chebval(grid, coeffs)))) >= 1.0:
        raise PhaseFactorError(
            "target polynomial must be strictly bounded by 1 in magnitude on [-1, 1]")

    # start at the trivial point (Re P = 0 there); the first chord step then
    # jumps to J0^{-1} c which is the proper fixed-point-iteration start
    # regardless of the coefficient/phase ordering convention.
    reduced = np.zeros_like(target)
    jacobian = None
    refreshes = 0
    best_residual = np.inf
    best_reduced = reduced.copy()
    iterations = 0
    stall_counter = 0
    for iterations in range(1, max_iterations + 1):
        current = forward(reduced)
        mismatch = current - target
        residual = float(np.max(np.abs(mismatch)))
        if residual < best_residual:
            improvement = best_residual - residual
            best_residual = residual
            best_reduced = reduced.copy()
            stall_counter = 0 if improvement > 0.1 * residual else stall_counter + 1
        else:
            stall_counter += 1
        if residual <= tolerance:
            return PhaseFactorResult(
                phases=_symmetric_full_phases(reduced, degree), degree=degree,
                parity=parity, residual=residual, iterations=iterations,
                converged=True, jacobian_refreshes=refreshes)
        if jacobian is None or (stall_counter >= 3 and refreshes < max_jacobian_refreshes):
            if jacobian is not None:
                refreshes += 1
                stall_counter = 0
            jacobian = _numerical_jacobian(forward, reduced)
        try:
            step = np.linalg.solve(jacobian, mismatch)
        except np.linalg.LinAlgError:
            step = np.linalg.lstsq(jacobian, mismatch, rcond=None)[0]
        reduced = reduced - step

    final_residual = best_residual
    result = PhaseFactorResult(
        phases=_symmetric_full_phases(best_reduced, degree), degree=degree,
        parity=parity, residual=final_residual, iterations=iterations,
        converged=final_residual <= tolerance, jacobian_refreshes=refreshes)
    if raise_on_failure and not result.converged:
        raise PhaseFactorError(
            "phase-factor iteration did not reach the requested tolerance",
            iterations=iterations, achieved=final_residual, target=tolerance)
    return result
