"""Variational Quantum Linear Solver baseline (Ref. [6] of the paper).

VQLS prepares a parametrised ansatz state ``|ψ(θ)>`` and classically minimises
a cost function that vanishes when ``A|ψ(θ)> ∝ |b>``.  We use the normalised
global cost

.. math::  C(θ) = 1 - \\frac{|\\langle b | A | ψ(θ)\\rangle|^2}
                          {\\|A|ψ(θ)\\rangle\\|^2},

with a hardware-efficient ansatz (layers of ``Ry`` rotations and a ring of
CZ entanglers) simulated exactly on the state-vector engine, and scipy's
derivative-free optimisers for the outer loop.  This is the usual
"ideal-expectation" study of VQLS (no shot noise, no Hadamard-test circuits),
sufficient for comparing achievable accuracy and iteration counts against the
QSVT approach on the paper's problem sizes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from ..core.normalization import recover_scale
from ..core.results import SingleSolveRecord
from ..exceptions import ConvergenceError
from ..linalg import scaled_residual
from ..quantum import QuantumCircuit, apply_circuit
from ..utils import as_generator, as_vector, check_power_of_two, check_square

__all__ = ["VQLSResult", "VQLSSolver"]


@dataclass(frozen=True)
class VQLSResult:
    """Diagnostics of one VQLS optimisation."""

    #: de-normalised solution estimate.
    x: np.ndarray
    #: optimal ansatz parameters.
    parameters: np.ndarray
    #: final value of the VQLS cost function.
    cost: float
    #: number of cost-function evaluations used by the optimiser.
    evaluations: int
    #: whether the optimiser reported success.
    converged: bool


class VQLSSolver:
    """Variational quantum linear solver on the exact state-vector simulator.

    Parameters
    ----------
    matrix:
        System matrix (``N x N``, ``N = 2**n``).
    layers:
        Number of ansatz layers (each layer: one ``Ry`` per qubit + CZ ring).
    optimizer:
        Any scipy.optimize.minimize method name (default ``"COBYLA"``).
    max_evaluations:
        Budget of cost evaluations for the classical optimiser.
    rng:
        Seed/generator for the initial parameters.
    """

    def __init__(self, matrix, *, layers: int = 3, optimizer: str = "COBYLA",
                 max_evaluations: int = 2000, rng=None) -> None:
        self.matrix = check_square(np.asarray(matrix, dtype=float), name="A")
        check_power_of_two(self.matrix.shape[0], name="matrix dimension")
        self.num_qubits = int(self.matrix.shape[0]).bit_length() - 1
        self.layers = int(layers)
        self.optimizer = optimizer
        self.max_evaluations = int(max_evaluations)
        self.rng = as_generator(rng)

    # ------------------------------------------------------------------ #
    @property
    def num_parameters(self) -> int:
        """Number of variational parameters of the ansatz."""
        return (self.layers + 1) * self.num_qubits

    def ansatz_circuit(self, parameters) -> QuantumCircuit:
        """Hardware-efficient ansatz: Ry layer, then ``layers`` × (CZ ring + Ry layer)."""
        params = np.asarray(parameters, dtype=float).reshape(-1)
        if params.shape[0] != self.num_parameters:
            raise ConvergenceError(
                f"expected {self.num_parameters} parameters, got {params.shape[0]}")
        qc = QuantumCircuit(self.num_qubits, name="vqls_ansatz")
        index = 0
        for qubit in range(self.num_qubits):
            qc.ry(float(params[index]), qubit)
            index += 1
        entangling_pairs = [(q, q + 1) for q in range(self.num_qubits - 1)]
        if self.num_qubits > 2:
            entangling_pairs.append((self.num_qubits - 1, 0))   # close the ring
        for _ in range(self.layers):
            for control, target in entangling_pairs:
                qc.cz(control, target)
            for qubit in range(self.num_qubits):
                qc.ry(float(params[index]), qubit)
                index += 1
        return qc

    def ansatz_state(self, parameters) -> np.ndarray:
        """State vector prepared by the ansatz.

        The parameters change on every optimiser evaluation, so the circuit
        is one-shot: the per-gate loop (``fusion="none"``) skips the plan
        compilation and caching that only pay off for replayed circuits.
        """
        return apply_circuit(self.ansatz_circuit(parameters), fusion="none").data

    def cost(self, parameters, rhs_normalized: np.ndarray) -> float:
        """Normalised global VQLS cost ``1 - |<b|A|ψ>|²/||A|ψ>||²``."""
        psi = self.ansatz_state(parameters)
        a_psi = self.matrix @ psi
        denom = float(np.real(np.vdot(a_psi, a_psi)))
        if denom == 0.0:
            return 1.0
        overlap = np.vdot(rhs_normalized, a_psi)
        return float(1.0 - (abs(overlap) ** 2) / denom)

    # ------------------------------------------------------------------ #
    def run(self, rhs, *, initial_parameters=None, tolerance: float = 1e-12) -> VQLSResult:
        """Optimise the ansatz for the given right-hand side."""
        b = as_vector(rhs, name="rhs").astype(float)
        norm_b = np.linalg.norm(b)
        if norm_b == 0.0:
            raise ConvergenceError("right-hand side must be nonzero")
        b_hat = b / norm_b
        if initial_parameters is None:
            initial_parameters = self.rng.uniform(-np.pi, np.pi, self.num_parameters)
        evaluations = 0

        def objective(theta):
            nonlocal evaluations
            evaluations += 1
            return self.cost(theta, b_hat)

        result = optimize.minimize(objective, np.asarray(initial_parameters, dtype=float),
                                   method=self.optimizer, tol=tolerance,
                                   options={"maxiter": self.max_evaluations})
        psi = np.real(self.ansatz_state(result.x))
        psi = psi / np.linalg.norm(psi)
        scale = recover_scale(self.matrix, psi, b)
        return VQLSResult(x=scale * psi, parameters=np.asarray(result.x, dtype=float),
                          cost=float(result.fun), evaluations=evaluations,
                          converged=bool(result.success or result.fun < 1e-6))

    def solve(self, rhs) -> SingleSolveRecord:
        """Solve ``A x = rhs`` (protocol shared with the other solvers)."""
        start = time.perf_counter()
        result = self.run(rhs)
        elapsed = time.perf_counter() - start
        b = as_vector(rhs).astype(float)
        omega = scaled_residual(self.matrix, result.x, b)
        norm = float(np.linalg.norm(result.x))
        direction = result.x / norm if norm > 0 else result.x
        return SingleSolveRecord(x=result.x, direction=direction, scale=norm,
                                 scaled_residual=float(omega),
                                 block_encoding_calls=0, polynomial_degree=0,
                                 success_probability=1.0, shots=0, wall_time=elapsed)

    def describe(self) -> dict:
        """Metadata dictionary."""
        return {"backend": "vqls", "layers": self.layers, "optimizer": self.optimizer,
                "num_parameters": self.num_parameters}
