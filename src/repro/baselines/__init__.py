"""Baseline linear solvers the paper positions itself against.

The introduction of the paper cites three quantum linear-solver families —
HHL (Ref. [18]), VQLS (Ref. [6]) and QSVT — and mentions prior work combining
HHL with iterative refinement (Refs. [36], [39]).  This sub-package implements
simulator-level versions of those baselines plus plain classical direct
solvers at several precisions, so the benchmarks can compare convergence
behaviour and quantum resource usage on identical problems.
"""

from .classical import ClassicalDirectSolver, classical_solve
from .hhl import HHLResult, HHLSolver
from .hhl_refinement import hhl_with_refinement
from .vqls import VQLSResult, VQLSSolver

__all__ = [
    "ClassicalDirectSolver",
    "classical_solve",
    "HHLSolver",
    "HHLResult",
    "hhl_with_refinement",
    "VQLSSolver",
    "VQLSResult",
]
