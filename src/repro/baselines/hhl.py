"""Harrow–Hassidim–Lloyd (HHL) linear solver baseline (Ref. [18] of the paper).

The implementation follows the textbook pipeline on the dense simulator:

1. the (possibly non-Hermitian) matrix is embedded into the Hermitian dilation
   ``H = [[0, A], [A†, 0]]`` so that solving ``H y = (b, 0)`` yields
   ``y = (0, x)``;
2. quantum phase estimation with ``clock_qubits`` ancillas is run on
   ``U = exp(i H t)`` applied to ``|b>``;
3. the eigenvalue-inversion rotation maps each estimated phase ``λ̃`` to an
   ancilla amplitude ``C/λ̃``;
4. the phase estimation is uncomputed and the rotation ancilla post-selected
   on ``|1>``.

This is an *ideal-oracle* HHL: phase estimation is modelled exactly through
the eigendecomposition of the (dilated) system matrix — each eigenvalue is
rounded to the ``clock_qubits``-bit grid, which is the dominant error source
of the algorithm — rather than by simulating the controlled powers of
``exp(iHt)`` gate by gate.  This is the standard way of studying HHL's
accuracy limits and keeps the baseline tractable at the same sizes as the
QSVT experiments.  The solver exposes the same interface as
:class:`repro.core.qsvt_solver.QSVTLinearSolver`, so it can be refined by the
same driver (see :mod:`repro.baselines.hhl_refinement`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.normalization import recover_scale
from ..core.results import SingleSolveRecord
from ..exceptions import BackendError
from ..linalg import scaled_residual
from ..utils import as_vector, check_power_of_two, check_square, is_hermitian

__all__ = ["HHLResult", "HHLSolver"]


@dataclass(frozen=True)
class HHLResult:
    """Diagnostic information of one HHL run."""

    #: solution estimate (de-normalised).
    x: np.ndarray
    #: unit-norm direction produced by the post-selected state.
    direction: np.ndarray
    #: probability of the eigenvalue-inversion ancilla post-selection.
    success_probability: float
    #: number of clock qubits used by phase estimation.
    clock_qubits: int
    #: evolution time of the Hamiltonian simulation.
    evolution_time: float


class HHLSolver:
    """Phase-estimation-based quantum linear solver.

    Parameters
    ----------
    matrix:
        System matrix (``N x N``, ``N`` a power of two).  Non-Hermitian
        matrices are handled through the Hermitian dilation.
    clock_qubits:
        Number of phase-estimation qubits; the eigenvalue resolution — and
        hence the solve accuracy — is ``O(2^{-clock_qubits} κ)``.
    rotation_constant:
        The constant ``C`` of the ``C/λ`` inversion rotation; defaults to the
        smallest representable eigenvalue magnitude.
    """

    def __init__(self, matrix, *, clock_qubits: int = 8,
                 rotation_constant: float | None = None) -> None:
        mat = check_square(np.asarray(matrix, dtype=complex), name="A")
        check_power_of_two(mat.shape[0], name="matrix dimension")
        self.matrix = np.real_if_close(mat)
        self.clock_qubits = int(clock_qubits)
        if self.clock_qubits < 2:
            raise BackendError("HHL needs at least two clock qubits")
        self.hermitian = is_hermitian(mat)
        self._system = mat if self.hermitian else np.block(
            [[np.zeros_like(mat), mat], [mat.conj().T, np.zeros_like(mat)]])
        eigenvalues = np.linalg.eigvalsh(self._system)
        self._lambda_max = float(np.max(np.abs(eigenvalues)))
        self._lambda_min = float(np.min(np.abs(eigenvalues)))
        if self._lambda_min == 0.0:
            raise BackendError("matrix is singular; HHL cannot invert it")
        # evolution time chosen so the spectrum fits in (0, 2π) once shifted
        self.evolution_time = float(np.pi / self._lambda_max)
        self.rotation_constant = (rotation_constant if rotation_constant is not None
                                  else 0.9 * self._lambda_min)
        self.epsilon_l = float(2.0 ** (-self.clock_qubits) * self._lambda_max
                               / self._lambda_min)
        self.kappa = self._lambda_max / self._lambda_min

    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        """Metadata used by the refinement driver and the benchmarks."""
        return {"backend": "hhl", "clock_qubits": self.clock_qubits,
                "epsilon_l": self.epsilon_l, "kappa": self.kappa}

    # ------------------------------------------------------------------ #
    def _phase_estimation_vectors(self) -> tuple[np.ndarray, np.ndarray]:
        """Eigen-decomposition of the (dilated) system matrix."""
        eigenvalues, eigenvectors = np.linalg.eigh(self._system)
        return eigenvalues, eigenvectors

    def run(self, rhs) -> HHLResult:
        """Execute HHL for the right-hand side and return diagnostics."""
        b = as_vector(rhs, name="rhs").astype(complex)
        if b.shape[0] != self.matrix.shape[0]:
            raise BackendError("right-hand side length does not match the matrix")
        norm_b = np.linalg.norm(b)
        if norm_b == 0.0:
            raise BackendError("right-hand side must be nonzero")
        if self.hermitian:
            loaded = b / norm_b
        else:
            loaded = np.concatenate([b, np.zeros_like(b)]) / norm_b

        eigenvalues, eigenvectors = self._phase_estimation_vectors()
        amplitudes = eigenvectors.conj().T @ loaded

        # phase estimation discretises λ t / (2π) on `clock_qubits` bits; we model
        # the resulting eigenvalue estimate and the C/λ̃ rotation per eigenspace.
        num_bins = 2**self.clock_qubits
        phases = eigenvalues * self.evolution_time / (2.0 * np.pi)
        estimated_phases = np.round(phases * num_bins) / num_bins
        estimated_eigenvalues = estimated_phases * 2.0 * np.pi / self.evolution_time
        # avoid the exactly-zero bin (unresolvable eigenvalue)
        tiny = 2.0 * np.pi / (self.evolution_time * num_bins)
        estimated_eigenvalues = np.where(np.abs(estimated_eigenvalues) < tiny / 2,
                                         np.sign(eigenvalues) * tiny / 2,
                                         estimated_eigenvalues)
        rotation = np.clip(self.rotation_constant / estimated_eigenvalues, -1.0, 1.0)
        post_selected = amplitudes * rotation
        success_probability = float(np.linalg.norm(post_selected) ** 2)
        if success_probability == 0.0:
            raise BackendError("HHL post-selection failed (zero amplitude)")
        solution_full = eigenvectors @ post_selected
        if not self.hermitian:
            solution_full = solution_full[self.matrix.shape[0]:]
        direction = np.real(solution_full)
        norm_dir = np.linalg.norm(direction)
        if norm_dir == 0.0:
            raise BackendError("HHL produced a zero solution direction")
        direction = direction / norm_dir
        scale = recover_scale(np.real(self.matrix), direction, np.real(b))
        return HHLResult(x=scale * direction, direction=direction,
                         success_probability=success_probability,
                         clock_qubits=self.clock_qubits,
                         evolution_time=self.evolution_time)

    def solve(self, rhs) -> SingleSolveRecord:
        """Solve ``A x = rhs`` (protocol shared with the QSVT solver)."""
        start = time.perf_counter()
        result = self.run(rhs)
        elapsed = time.perf_counter() - start
        omega = scaled_residual(np.real(self.matrix), result.x, np.real(
            as_vector(rhs).astype(float)))
        return SingleSolveRecord(
            x=result.x, direction=result.direction,
            scale=float(np.linalg.norm(result.x)),
            scaled_residual=float(omega),
            block_encoding_calls=0, polynomial_degree=0,
            success_probability=result.success_probability,
            shots=0, wall_time=elapsed)
