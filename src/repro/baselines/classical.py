"""Classical direct solvers at selectable precision.

These thin wrappers exist so the benchmarks can express "LAPACK-style solve at
precision ``u``" through the same :class:`SingleSolveRecord` interface as the
quantum solvers.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.results import SingleSolveRecord
from ..linalg import lu_factor, scaled_residual
from ..precision import get_precision
from ..utils import as_vector, check_square

__all__ = ["ClassicalDirectSolver", "classical_solve"]


class ClassicalDirectSolver:
    """LU-with-partial-pivoting direct solver at a fixed precision.

    Implements the same ``matrix`` / ``solve(rhs)`` protocol as
    :class:`repro.core.qsvt_solver.QSVTLinearSolver`, so it can be passed to
    the refinement driver or compared side-by-side in benchmarks.
    """

    def __init__(self, matrix, *, precision="fp64") -> None:
        self.matrix = check_square(np.asarray(matrix, dtype=float), name="A")
        self.precision = get_precision(precision)
        self.factorization = lu_factor(self.matrix, precision=self.precision)
        self.epsilon_l = self.precision.unit_roundoff

    def describe(self) -> dict:
        """Metadata dictionary (solver name and precision)."""
        return {"backend": "classical-direct", "precision": self.precision.name}

    def solve(self, rhs) -> SingleSolveRecord:
        """Solve ``A x = rhs`` and wrap the result in a solve record."""
        b = as_vector(rhs, name="rhs").astype(float)
        start = time.perf_counter()
        x = self.factorization.solve(b, precision=self.precision)
        elapsed = time.perf_counter() - start
        norm = float(np.linalg.norm(x))
        direction = x / norm if norm > 0 else x
        omega = scaled_residual(self.matrix, x, b) if np.linalg.norm(b) > 0 else 0.0
        return SingleSolveRecord(x=x, direction=direction, scale=norm,
                                 scaled_residual=float(omega), wall_time=elapsed)


def classical_solve(matrix, rhs, *, precision="fp64") -> np.ndarray:
    """One-shot classical solve at the requested precision."""
    return ClassicalDirectSolver(matrix, precision=precision).solve(rhs).x
