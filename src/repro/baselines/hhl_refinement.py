"""HHL combined with iterative refinement (Refs. [36], [39] of the paper).

Prior work applied the same refinement idea to the HHL solver; since our
refinement driver is generic over the inner solver, reproducing that baseline
is a three-line wrapper.  The benchmarks use it to compare "HHL + IR" against
"QSVT + IR" on identical systems.
"""

from __future__ import annotations

from ..core.refinement import MixedPrecisionRefinement
from ..core.results import RefinementResult
from .hhl import HHLSolver

__all__ = ["hhl_with_refinement"]


def hhl_with_refinement(matrix, rhs, *, clock_qubits: int = 8,
                        target_accuracy: float = 1e-10,
                        max_iterations: int | None = None,
                        x_true=None) -> RefinementResult:
    """Solve ``A x = rhs`` with HHL as the inner solver of Algorithm 2.

    Parameters
    ----------
    matrix, rhs:
        The linear system.
    clock_qubits:
        Phase-estimation register size — it fixes the inner accuracy ``ε_l``
        of each HHL solve.
    target_accuracy:
        Target scaled residual of the refined solution.
    max_iterations:
        Optional cap on the refinement iterations.
    x_true:
        Optional reference solution for forward-error tracking.
    """
    solver = HHLSolver(matrix, clock_qubits=clock_qubits)
    driver = MixedPrecisionRefinement(solver, target_accuracy=target_accuracy,
                                      max_iterations=max_iterations,
                                      track_communication=False)
    return driver.solve(rhs, x_true=x_true)
