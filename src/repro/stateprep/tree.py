"""Tree-based state preparation (Kerenidis–Prakash, Ref. [23] of the paper).

Given a real vector ``b`` of length ``N = 2**n``, the classical preprocessing
builds a binary tree whose leaves hold the signed amplitudes and whose
internal nodes hold the Euclidean norms of their subtrees.  Each tree level
``k`` then becomes one uniformly controlled ``Ry`` acting on qubit ``k`` and
controlled by qubits ``0 .. k-1``; the rotation angle of node ``j`` is
``2·atan2(value_right, value_left)``, which reproduces both the magnitudes and
the signs of the amplitudes (signs are carried entirely by the leaf level,
where the "values" are the signed entries themselves).

Two circuit flavours are produced:

* ``decompose=False`` (default): each level is a single dense multiplexor
  gate — efficient to simulate and exactly equivalent;
* ``decompose=True``: each multiplexor is expanded into CNOTs and single-qubit
  ``Ry`` gates (``2**k`` of each at level ``k``), which is what a resource
  estimation needs.

Complex vectors are supported by preparing the magnitudes with the tree and
appending a diagonal phase gate (counted explicitly in the resource model).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import StatePreparationError
from ..quantum import QuantumCircuit
from ..quantum.decompositions import multiplexed_ry_circuit, multiplexor_matrix
from ..utils import as_vector, check_power_of_two

__all__ = ["TreeStatePreparation", "StatePreparationResult", "prepare_state_circuit"]


@dataclass(frozen=True)
class StatePreparationResult:
    """Output of :meth:`TreeStatePreparation.build`.

    Attributes
    ----------
    circuit:
        Circuit preparing ``|b> = b / ||b||`` from ``|0...0>``.
    norm:
        Euclidean norm of the input vector (needed to undo the normalisation).
    num_qubits:
        Number of data qubits ``n = log2(N)``.
    classical_flops:
        Estimated classical preprocessing cost (``O(N)``), reported to the
        cost model of Sec. III-C2.
    """

    circuit: QuantumCircuit
    norm: float
    num_qubits: int
    classical_flops: int


class TreeStatePreparation:
    """Builder for tree-based state-preparation circuits.

    Parameters
    ----------
    decompose:
        When ``True`` the multiplexed rotations are expanded into CNot + Ry
        gates; when ``False`` they stay as dense multiplexor blocks (cheaper
        to simulate, identical unitary action).
    """

    def __init__(self, *, decompose: bool = False) -> None:
        self.decompose = bool(decompose)

    # ------------------------------------------------------------------ #
    @staticmethod
    def tree_values(vector: np.ndarray) -> list[np.ndarray]:
        """Binary tree of the Kerenidis–Prakash construction.

        ``tree[n]`` is the leaf level (the signed amplitudes, length ``N``),
        ``tree[k]`` for ``k < n`` holds the subtree 2-norms (length ``2**k``),
        and ``tree[0]`` is the overall norm.
        """
        n_levels = int(vector.shape[0]).bit_length() - 1
        levels = [np.asarray(vector, dtype=float)]
        current = np.abs(levels[0]) ** 2
        for _ in range(n_levels):
            current = current.reshape(-1, 2).sum(axis=1)
            levels.append(np.sqrt(current))
        levels.reverse()
        return levels

    @staticmethod
    def rotation_angles(tree: list[np.ndarray]) -> list[np.ndarray]:
        """Per-level multiplexor angles ``θ = 2·atan2(value_right, value_left)``."""
        angles: list[np.ndarray] = []
        for level in range(1, len(tree)):
            values = tree[level]
            left = values[0::2]
            right = values[1::2]
            angles.append(2.0 * np.arctan2(right, left))
        return angles

    # ------------------------------------------------------------------ #
    def build(self, vector) -> StatePreparationResult:
        """Build the state-preparation circuit for ``vector``.

        Raises
        ------
        StatePreparationError
            If the vector has zero norm or a non power-of-two length.
        """
        vec = as_vector(vector, name="state vector")
        if np.iscomplexobj(vec):
            return self._build_complex(vec)
        vec = vec.astype(np.float64)
        n_qubits = self._validate(vec)
        norm = float(np.linalg.norm(vec))
        tree = self.tree_values(vec)
        angle_levels = self.rotation_angles(tree)
        circuit = QuantumCircuit(n_qubits, name="tree_state_prep")
        for level, angles in enumerate(angle_levels):
            self._append_multiplexor(circuit, angles, level)
        flops = 4 * vec.shape[0]  # squaring, pairwise sums, square roots, atan2
        return StatePreparationResult(circuit=circuit, norm=norm,
                                      num_qubits=n_qubits, classical_flops=flops)

    def _build_complex(self, vec: np.ndarray) -> StatePreparationResult:
        n_qubits = self._validate(vec)
        norm = float(np.linalg.norm(vec))
        magnitudes = np.abs(vec)
        phases = np.angle(vec)
        magnitude_result = self.build(magnitudes)
        circuit = magnitude_result.circuit
        # global diagonal of phases applied on the full register as one block
        diag = np.diag(np.exp(1j * phases)).astype(complex)
        circuit.unitary(diag, qubits=list(range(n_qubits)), name="phase_diagonal")
        flops = magnitude_result.classical_flops + 2 * vec.shape[0]
        return StatePreparationResult(circuit=circuit, norm=norm,
                                      num_qubits=n_qubits, classical_flops=flops)

    # ------------------------------------------------------------------ #
    def _validate(self, vec: np.ndarray) -> int:
        try:
            check_power_of_two(vec.shape[0], name="state vector length")
        except Exception as exc:  # re-raise with the domain-specific type
            raise StatePreparationError(str(exc)) from exc
        if vec.shape[0] < 2:
            raise StatePreparationError("state vector must have length >= 2")
        norm = float(np.linalg.norm(vec))
        if norm == 0.0 or not np.isfinite(norm):
            raise StatePreparationError("cannot prepare a zero or non-finite vector")
        return int(vec.shape[0]).bit_length() - 1

    def _append_multiplexor(self, circuit: QuantumCircuit, angles: np.ndarray,
                            level: int) -> None:
        target = level
        controls = list(range(level))
        if not controls:
            circuit.ry(float(angles[0]), target)
            return
        if self.decompose:
            sub = multiplexed_ry_circuit(angles, controls=controls, target=target,
                                         num_qubits=circuit.num_qubits)
            circuit.compose(sub)
        else:
            matrix = multiplexor_matrix("ry", angles)
            circuit.unitary(matrix, qubits=[*controls, target],
                            name=f"ucry_l{level}")


def prepare_state_circuit(vector, *, decompose: bool = False) -> StatePreparationResult:
    """Convenience wrapper: build the tree state-preparation circuit for ``vector``."""
    return TreeStatePreparation(decompose=decompose).build(vector)
