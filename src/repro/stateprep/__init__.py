"""Quantum state preparation.

The right-hand side ``b`` (and, at every refinement step, the residual ``r_i``)
must be loaded into the data register as the normalised state ``|b>``.  The
paper uses the tree-based method of Kerenidis & Prakash (Ref. [23]): a binary
tree of partial norms is computed classically in ``O(N)`` flops and translated
into one uniformly controlled Y-rotation per tree level.
"""

from .tree import StatePreparationResult, TreeStatePreparation, prepare_state_circuit

__all__ = ["TreeStatePreparation", "StatePreparationResult", "prepare_state_circuit"]
