"""Application-level problem definitions.

The paper evaluates the solver on random systems with prescribed condition
numbers (Sec. IV) and motivates the complexity discussion with the 1-D Poisson
equation (Sec. III-C4).  This sub-package wraps both as reusable "workloads"
with analytic/classical reference solutions, used by the examples, the tests
and the benchmark harness.
"""

from .poisson import PoissonProblem
from .workloads import LinearSystemWorkload, random_workload, workload_suite

__all__ = [
    "PoissonProblem",
    "LinearSystemWorkload",
    "random_workload",
    "workload_suite",
]
