"""Application-level problem definitions.

The paper evaluates the solver on random systems with prescribed condition
numbers (Sec. IV) and motivates the complexity discussion with the 1-D Poisson
equation (Sec. III-C4).  This sub-package wraps both as reusable "workloads"
with analytic/classical reference solutions, used by the examples, the tests
and the benchmark harness.

The wider workload catalogue — 2-D/3-D Poisson, heat-equation time-stepping
chains, convection-diffusion, Helmholtz, graph Laplacians and
prescribed-spectrum banded systems — lives in :mod:`repro.problems`, whose
families all yield the same :class:`LinearSystemWorkload` records defined
here (``problem_suite()`` returns the registered instances).
"""

from .poisson import PoissonProblem
from .workloads import LinearSystemWorkload, random_workload, workload_suite

__all__ = [
    "PoissonProblem",
    "LinearSystemWorkload",
    "random_workload",
    "workload_suite",
    "problem_suite",
]


def problem_suite() -> dict:
    """The registered :mod:`repro.problems` families, keyed by name.

    Imported lazily: :mod:`repro.problems` depends on the engine layer,
    which in turn imports this sub-package.
    """
    from ..problems import PROBLEM_FAMILIES

    return dict(PROBLEM_FAMILIES)
