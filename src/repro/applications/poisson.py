"""The 1-D Poisson problem of Sec. III-C4 (Eq. (6)–(7) of the paper).

``-u''(x) = f(x)`` on ``(0, 1)`` with homogeneous Dirichlet boundary
conditions, discretised by central finite differences on ``N`` interior points
with step ``h = 1/(N+1)``.  The class bundles the matrix, right-hand sides for
common forcing terms, the exact discrete solution (Thomas algorithm, ``O(N)``)
and the analytic condition-number formula ``κ ≈ (2(N+1)/π)²`` that the paper
quotes as ``O(N²)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..linalg import condition_number, poisson_1d_matrix, thomas_solve
from ..utils import is_power_of_two

__all__ = ["PoissonProblem"]


@dataclass
class PoissonProblem:
    """Finite-difference discretisation of the 1-D Poisson equation.

    Parameters
    ----------
    num_points:
        Number of interior grid points ``N`` (a power of two for the quantum
        pipeline, but any positive integer is accepted for classical use).
    forcing:
        Right-hand side function ``f``; defaults to
        ``f(x) = π² sin(π x)`` whose exact continuous solution is
        ``u(x) = sin(π x)``.
    scaled:
        Divide the matrix by ``h²`` as in Eq. (7) (default ``True``).
    """

    num_points: int
    forcing: Callable[[np.ndarray], np.ndarray] | None = None
    scaled: bool = True

    def __post_init__(self) -> None:
        if self.num_points < 1:
            raise ValueError("num_points must be positive")
        if self.forcing is None:
            self.forcing = lambda x: np.pi**2 * np.sin(np.pi * x)

    # ------------------------------------------------------------------ #
    @property
    def step(self) -> float:
        """Grid spacing ``h = 1/(N+1)``."""
        return 1.0 / (self.num_points + 1)

    @property
    def grid(self) -> np.ndarray:
        """Interior grid points ``x_j = j h``, ``j = 1..N``."""
        return self.step * np.arange(1, self.num_points + 1)

    @property
    def is_quantum_ready(self) -> bool:
        """Whether ``N`` is a power of two (required by the quantum encodings)."""
        return is_power_of_two(self.num_points)

    @property
    def num_qubits(self) -> int:
        """Data qubits needed to hold the solution vector."""
        if not self.is_quantum_ready:
            raise ValueError("num_points must be a power of two for the quantum pipeline")
        return int(self.num_points).bit_length() - 1

    # ------------------------------------------------------------------ #
    def matrix(self) -> np.ndarray:
        """The tridiagonal system matrix of Eq. (7)."""
        return poisson_1d_matrix(self.num_points, scaled=self.scaled)

    def right_hand_side(self) -> np.ndarray:
        """Right-hand side vector ``f(x_j)`` on the interior grid."""
        return np.asarray(self.forcing(self.grid), dtype=float)

    def system(self) -> tuple[np.ndarray, np.ndarray]:
        """``(A, b)`` pair ready to be handed to a solver."""
        return self.matrix(), self.right_hand_side()

    def reference_solution(self) -> np.ndarray:
        """Exact solution of the *discrete* system (Thomas algorithm, ``O(N)``)."""
        return thomas_solve(self.matrix(), self.right_hand_side())

    def continuous_solution(self) -> np.ndarray:
        """Exact continuous solution sampled on the grid (default forcing only).

        Only meaningful for the default forcing ``π² sin(π x)``; for custom
        forcings use :meth:`reference_solution`.
        """
        return np.sin(np.pi * self.grid)

    # ------------------------------------------------------------------ #
    def condition_number(self, *, exact: bool = False) -> float:
        """Condition number of the matrix.

        With ``exact=False`` (default) the analytic estimate
        ``(2(N+1)/π)²`` is returned — the ``O(N²)`` growth quoted by the
        paper; with ``exact=True`` the SVD-based value is computed.
        """
        if exact:
            return condition_number(self.matrix())
        return float((2.0 * (self.num_points + 1) / np.pi) ** 2)

    def discretization_error(self) -> float:
        """Max-norm distance between the discrete and continuous solutions."""
        return float(np.max(np.abs(self.reference_solution() - self.continuous_solution())))
