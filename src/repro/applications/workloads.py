"""Random linear-system workloads (the Sec. IV experimental setup).

The paper's experiments use ``N = 16`` random matrices with prescribed
condition numbers and unit-norm random right-hand sides.  A
:class:`LinearSystemWorkload` packages one such problem together with its
exact solution and metadata, and :func:`workload_suite` generates the
parameter sweeps used by the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..linalg import (
    condition_number,
    random_matrix_with_condition_number,
    random_rhs,
)
from ..utils import as_generator

__all__ = ["LinearSystemWorkload", "random_workload", "workload_suite"]


@dataclass
class LinearSystemWorkload:
    """A linear system plus its exact solution and descriptive metadata."""

    #: short name used by reports ("random-k10", "poisson-n16", ...).
    name: str
    #: system matrix.
    matrix: np.ndarray
    #: right-hand side (unit norm unless stated otherwise).
    rhs: np.ndarray
    #: exact solution computed classically in double precision.
    solution: np.ndarray
    #: target condition number used to build the matrix.
    condition_number: float
    #: extra information (seed, distribution, ...).
    metadata: dict = field(default_factory=dict)

    @property
    def dimension(self) -> int:
        """Problem size ``N``."""
        return self.matrix.shape[0]

    def measured_condition_number(self) -> float:
        """Exact condition number of the generated matrix (SVD)."""
        return condition_number(self.matrix)


def random_workload(dimension: int, kappa: float, *, rng=None,
                    distribution: str = "logarithmic",
                    name: str | None = None) -> LinearSystemWorkload:
    """One random system with prescribed condition number (Sec. IV setup)."""
    gen = as_generator(rng)
    matrix = random_matrix_with_condition_number(dimension, kappa, rng=gen,
                                                 distribution=distribution)
    rhs = random_rhs(dimension, rng=gen)
    solution = np.linalg.solve(matrix, rhs)
    label = name if name is not None else f"random-n{dimension}-k{kappa:g}"
    return LinearSystemWorkload(
        name=label, matrix=matrix, rhs=rhs, solution=solution,
        condition_number=float(kappa),
        metadata={"distribution": distribution, "dimension": dimension})


def workload_suite(dimension: int = 16, condition_numbers=(2.0, 10.0, 100.0),
                   *, rng=None, distribution: str = "logarithmic"
                   ) -> list[LinearSystemWorkload]:
    """A sweep of random workloads over several condition numbers.

    All workloads share one seeded generator so the entire suite is
    reproducible from a single seed.
    """
    gen = as_generator(rng)
    return [random_workload(dimension, float(kappa), rng=gen, distribution=distribution)
            for kappa in condition_numbers]
