"""repro — mixed-precision quantum-classical linear system solver.

Reproduction of Koska, Baboulin, Gazda, "A mixed-precision quantum-classical
algorithm for solving linear systems" (IPPS 2025, arXiv:2502.02212).

The package is organised bottom-up (see ``DESIGN.md`` for the full inventory):

* :mod:`repro.precision` — floating-point formats and rounding emulation;
* :mod:`repro.linalg` — classical linear-algebra substrate and test problems;
* :mod:`repro.quantum` — dense state-vector simulator, Pauli utilities,
  fault-tolerant resource model;
* :mod:`repro.stateprep` / :mod:`repro.blockencoding` — encodings of vectors
  and matrices into circuits;
* :mod:`repro.qsp` — Chebyshev inverse polynomial (Eq. 4), QSP phase factors,
  QSVT circuits;
* :mod:`repro.core` — the QSVT linear solver and the mixed-precision
  iterative refinement (Algorithms 1–2), cost and communication models;
* :mod:`repro.baselines` — HHL, HHL+IR, VQLS and classical direct solvers;
* :mod:`repro.applications` — Poisson and random workloads;
* :mod:`repro.problems` — the workload suite: 2-D/3-D Poisson, heat-equation
  time-stepping chains, convection-diffusion, Helmholtz, graph Laplacians
  and prescribed-spectrum banded systems, each with classical exact
  solutions and (where known) analytic condition numbers;
* :mod:`repro.engine` — high-throughput service layer: batched statevector
  simulation (multi-RHS solves in one circuit sweep), a compiled-solver LRU
  cache, a parallel scenario runner + registry and the cost-model/telemetry
  autotuner;
* :mod:`repro.reporting` — text tables/series used by the benchmark harness.

Quickstart
----------
>>> import numpy as np
>>> from repro import QSVTLinearSolver, MixedPrecisionRefinement
>>> from repro.applications import random_workload
>>> w = random_workload(16, kappa=10.0, rng=0)
>>> solver = QSVTLinearSolver(w.matrix, epsilon_l=1e-2)
>>> result = MixedPrecisionRefinement(solver, target_accuracy=1e-10).solve(w.rhs)
>>> bool(result.converged)
True
"""

from ._version import __version__
from .core import (
    MixedPrecisionRefinement,
    QSVTLinearSolver,
    RefinementResult,
    SingleSolveRecord,
    mixed_precision_lu_refinement,
    refine,
)
from .engine import (
    AsyncSolveEngine,
    Autotuner,
    BatchedStatevector,
    CompiledSolverCache,
    JobResult,
    RunReport,
    ScenarioRunner,
    SolveJob,
    SynthesisStore,
    build_scenario,
    list_scenarios,
)
from .exceptions import ReproError

__all__ = [
    "__version__",
    "ReproError",
    "QSVTLinearSolver",
    "MixedPrecisionRefinement",
    "refine",
    "mixed_precision_lu_refinement",
    "RefinementResult",
    "SingleSolveRecord",
    "AsyncSolveEngine",
    "Autotuner",
    "BatchedStatevector",
    "CompiledSolverCache",
    "SynthesisStore",
    "ScenarioRunner",
    "SolveJob",
    "JobResult",
    "RunReport",
    "build_scenario",
    "list_scenarios",
]
