"""PDE-derived problem families: Poisson in 2-D/3-D, heat-equation time
stepping, convection–diffusion and Helmholtz.

All discretisations are central finite differences on uniform grids with
homogeneous Dirichlet boundary conditions.  The d-dimensional Laplacians are
Kronecker sums of the 1-D stencil ``T = tridiag(-1, 2, -1)``, whose
eigenvalues ``λ_j = 4 sin²(jπ / (2(n+1)))`` are known in closed form — so
every symmetric family here reports an *analytic* condition number,
generalising the paper's 1-D ``κ = O(N²)`` formula (Sec. III-C4) to new
workloads.

**Assembly.**  The symmetric families assemble
:class:`~repro.linalg.operators.StructuredOperator` instances by default
(``assembly="structured"``): Kronecker-sum operators for the 2-D/3-D
Laplacians, banded Toeplitz operators for the 1-D heat and Helmholtz
stencils — ``O(nnz)`` storage and assembly instead of ``O(N²)``, which is
what unlocks ``N ≥ 32768`` grids.  ``assembly="dense"`` reproduces the
original dense arrays bit-for-bit up to the dense wall
(:func:`repro.problems.base.check_dense_assembly`) and refuses beyond it.
The convection–diffusion family is non-symmetric: its structured default
assembles a :class:`~repro.linalg.operators.CSROperator` whose κ is
*estimated* matrix-free by Golub–Kahan bidiagonalisation
(:func:`repro.linalg.cond.estimate_operator_condition`) — the dilation-aware
backends invert it without ever densifying.  The indefinite Helmholtz family
can likewise swap its analytic κ pin for a safety-widened Lanczos estimate
(``kappa_source="estimated"``), exercising the same spectra-estimation
machinery the backends use when no closed form exists.
"""

from __future__ import annotations

import numpy as np

from ..applications.workloads import LinearSystemWorkload
from ..linalg import (
    BandedOperator,
    CSROperator,
    KroneckerSumOperator,
    is_structured_operator,
    lu_factor,
    tridiagonal_toeplitz,
)
from ..linalg.cond import estimate_operator_condition
from ..utils import as_generator
from .base import (
    ProblemFamily,
    SolveChain,
    check_dense_assembly,
    random_rhs_list,
    solved_workloads,
)

__all__ = [
    "stencil_eigenvalues",
    "Poisson2DFamily",
    "Poisson3DFamily",
    "HeatEquationChainFamily",
    "ConvectionDiffusionFamily",
    "HelmholtzFamily",
]


def stencil_eigenvalues(n: int) -> np.ndarray:
    """Eigenvalues ``4 sin²(jπ/(2(n+1)))`` of ``tridiag(-1, 2, -1)``, ascending."""
    j = np.arange(1, n + 1)
    return 4.0 * np.sin(j * np.pi / (2.0 * (n + 1))) ** 2


def _kronecker_laplacian(n: int, dims: int) -> np.ndarray:
    """d-dimensional Dirichlet Laplacian ``Σ_i I⊗…⊗T⊗…⊗I`` (unscaled, dense)."""
    t = tridiagonal_toeplitz(n, 2.0, -1.0)
    total = np.zeros((n**dims, n**dims))
    for axis in range(dims):
        term = np.eye(1)
        for position in range(dims):
            term = np.kron(term, t if position == axis else np.eye(n))
        total += term
    return total


def _assemble_laplacian(n: int, dims: int, *, scale: float, assembly: str,
                        family: str):
    """Kronecker Laplacian as a structured operator or a dense array.

    The structured form stores one ``n x n`` stencil block (``O(n²)``)
    instead of the ``n^{2d} = N²`` dense array; its exact Kronecker-sum
    eigenvalue bounds replace the dense SVD downstream.
    """
    if assembly == "structured":
        return KroneckerSumOperator([tridiagonal_toeplitz(n, 2.0, -1.0)] * dims,
                                    scale=scale)
    if assembly == "dense":
        check_dense_assembly(n**dims, family)
        return _kronecker_laplacian(n, dims) * scale
    raise ValueError(
        f"assembly must be 'structured' or 'dense', got {assembly!r}")


def _interior_grid(n: int) -> np.ndarray:
    """Interior points ``x_j = j h`` with ``h = 1/(n+1)``."""
    return np.arange(1, n + 1) / (n + 1)


# ---------------------------------------------------------------------- #
class Poisson2DFamily(ProblemFamily):
    """2-D Poisson: Kronecker-assembled five-point Laplacian, analytic κ."""

    name = "poisson-2d"
    description = ("2-D Poisson (five-point Kronecker Laplacian, "
                   "analytic kappa, optional multi-RHS)")

    def analytic_condition_number(self, *, grid_points: int = 4,
                                  scaled: bool = True, num_rhs: int = 1,
                                  assembly: str = "structured",
                                  rng=0) -> float:
        """Mirrors the :meth:`workloads` signature so misspelled parameter
        names raise instead of silently evaluating κ at the defaults."""
        del scaled, num_rhs, assembly, rng  # no influence on the spectrum ratio
        lam = stencil_eigenvalues(grid_points)
        # Kronecker-sum spectrum is λ_j + λ_k, so the d-dimensional κ equals
        # the 1-D ratio λ_max/λ_min for every d.
        return float(lam[-1] / lam[0])

    def workloads(self, *, grid_points: int = 4, scaled: bool = True,
                  num_rhs: int = 1, assembly: str = "structured",
                  rng=0) -> list[LinearSystemWorkload]:
        if grid_points < 1 or num_rhs < 1:
            raise ValueError("grid_points and num_rhs must be >= 1")
        n = int(grid_points)
        matrix = _assemble_laplacian(
            n, 2, scale=float((n + 1) ** 2) if scaled else 1.0,
            assembly=assembly, family=self.name)
        x = _interior_grid(n)
        # f(x, y) = 2π² sin(πx) sin(πy), the separable forcing whose
        # continuous solution is sin(πx) sin(πy).
        forcing = 2.0 * np.pi**2 * np.outer(np.sin(np.pi * x),
                                            np.sin(np.pi * x)).ravel()
        if not scaled:
            forcing = forcing / (n + 1) ** 2
        rhs_list = [forcing] + random_rhs_list(n * n, num_rhs - 1, as_generator(rng))
        kappa = self.analytic_condition_number(grid_points=n)
        return solved_workloads(
            f"poisson2d-n{n}", matrix, rhs_list, kappa,
            {"grid_points": n, "dimension": n * n, "scaled": bool(scaled),
             "assembly": assembly})


class Poisson3DFamily(ProblemFamily):
    """3-D Poisson: seven-point Kronecker Laplacian, analytic κ."""

    name = "poisson-3d"
    description = ("3-D Poisson (seven-point Kronecker Laplacian, "
                   "analytic kappa, optional multi-RHS)")

    def analytic_condition_number(self, *, grid_points: int = 2,
                                  scaled: bool = True, num_rhs: int = 1,
                                  assembly: str = "structured",
                                  rng=0) -> float:
        del scaled, num_rhs, assembly, rng  # no influence on the spectrum ratio
        lam = stencil_eigenvalues(grid_points)
        return float(lam[-1] / lam[0])

    def workloads(self, *, grid_points: int = 2, scaled: bool = True,
                  num_rhs: int = 1, assembly: str = "structured",
                  rng=0) -> list[LinearSystemWorkload]:
        if grid_points < 1 or num_rhs < 1:
            raise ValueError("grid_points and num_rhs must be >= 1")
        n = int(grid_points)
        matrix = _assemble_laplacian(
            n, 3, scale=float((n + 1) ** 2) if scaled else 1.0,
            assembly=assembly, family=self.name)
        s = np.sin(np.pi * _interior_grid(n))
        forcing = 3.0 * np.pi**2 * np.einsum("i,j,k->ijk", s, s, s).ravel()
        if not scaled:
            forcing = forcing / (n + 1) ** 2
        rhs_list = [forcing] + random_rhs_list(n**3, num_rhs - 1, as_generator(rng))
        kappa = self.analytic_condition_number(grid_points=n)
        return solved_workloads(
            f"poisson3d-n{n}", matrix, rhs_list, kappa,
            {"grid_points": n, "dimension": n**3, "scaled": bool(scaled),
             "assembly": assembly})


# ---------------------------------------------------------------------- #
class HeatEquationChainFamily(ProblemFamily):
    """Implicit-Euler heat equation: a chain of solves against one operator.

    ``u_t = α u_xx`` stepped by backward Euler solves
    ``(I + Δt α L) u_{k+1} = u_k`` — ``T`` ordered right-hand sides against
    one fixed matrix.  This is the ideal compile-once / solve-many workload:
    one synthesis, ``T − 1`` compiled-solver cache hits, and a single
    shared-memory segment in process mode.
    """

    name = "heat-chain"
    description = ("implicit-Euler heat equation: T ordered solves against "
                   "one fixed operator (the ideal cache/store workload)")

    def analytic_condition_number(self, *, num_points: int = 16,
                                  num_steps: int = 16, dt: float = 1e-3,
                                  diffusivity: float = 1.0,
                                  assembly: str = "structured") -> float:
        del num_steps, assembly  # every step shares the one operator
        lam = stencil_eigenvalues(num_points) * (num_points + 1) ** 2
        scale = float(dt) * float(diffusivity)
        return float((1.0 + scale * lam[-1]) / (1.0 + scale * lam[0]))

    def chain(self, *, num_points: int = 16, num_steps: int = 16,
              dt: float = 1e-3, diffusivity: float = 1.0,
              assembly: str = "structured") -> SolveChain:
        """Build the chain: operator, classical trajectory, per-step workloads."""
        if num_points < 1 or num_steps < 1:
            raise ValueError("num_points and num_steps must be >= 1")
        if dt <= 0 or diffusivity <= 0:
            raise ValueError("dt and diffusivity must be positive")
        n, steps = int(num_points), int(num_steps)
        scale = float(dt) * float(diffusivity) * (n + 1) ** 2
        if assembly == "structured":
            # I + Δt α L is itself tridiagonal Toeplitz: banded storage with
            # exact closed-form eigenvalue bounds.
            matrix = BandedOperator.toeplitz(
                n, {0: 1.0 + 2.0 * scale, 1: -scale, -1: -scale})
        elif assembly == "dense":
            check_dense_assembly(n, self.name)
            laplacian = tridiagonal_toeplitz(n, 2.0, -1.0) * (n + 1) ** 2
            matrix = np.eye(n) + float(dt) * float(diffusivity) * laplacian
        else:
            raise ValueError(
                f"assembly must be 'structured' or 'dense', got {assembly!r}")
        kappa = self.analytic_condition_number(num_points=n, dt=dt,
                                               diffusivity=diffusivity)
        state = np.sin(np.pi * _interior_grid(n))
        chain_name = f"heat-n{n}-T{steps}"
        if is_structured_operator(matrix):
            step_solve = matrix.solve           # banded LU, O(N) per step
        else:
            step_solve = lu_factor(matrix).solve  # one O(N³) factor for T steps
        workloads = []
        for step in range(steps):
            nxt = step_solve(state)
            workloads.append(LinearSystemWorkload(
                name=f"{chain_name}-step{step}", matrix=matrix, rhs=state,
                solution=nxt, condition_number=kappa,
                metadata={"family": self.name, "chain": chain_name,
                          "step": step, "dt": float(dt),
                          "diffusivity": float(diffusivity)}))
            state = nxt
        return SolveChain(name=chain_name, matrix=matrix, workloads=workloads,
                          metadata={"family": self.name, "dt": float(dt),
                                    "diffusivity": float(diffusivity),
                                    "num_steps": steps})

    def workloads(self, *, num_points: int = 16, num_steps: int = 16,
                  dt: float = 1e-3, diffusivity: float = 1.0,
                  assembly: str = "structured") -> list[LinearSystemWorkload]:
        return self.chain(num_points=num_points, num_steps=num_steps, dt=dt,
                          diffusivity=diffusivity, assembly=assembly).workloads


# ---------------------------------------------------------------------- #
class ConvectionDiffusionFamily(ProblemFamily):
    """1-D convection–diffusion: non-symmetric, tunable grid Péclet number.

    ``-ν u'' + c u' = f`` with central differences; the velocity is chosen
    from the requested grid Péclet number ``P = c h / (2ν)``, the knob that
    moves the problem away from symmetry (``P = 0`` recovers Poisson,
    ``P → 1`` approaches the central-difference stability limit).
    """

    name = "convection-diffusion"
    description = ("1-D convection-diffusion (non-symmetric, tunable grid "
                   "Peclet number)")

    def workloads(self, *, num_points: int = 16, peclet: float = 0.8,
                  diffusivity: float = 1.0, num_rhs: int = 1,
                  assembly: str = "structured", rng=0
                  ) -> list[LinearSystemWorkload]:
        if num_points < 2 or num_rhs < 1:
            raise ValueError("num_points must be >= 2 and num_rhs >= 1")
        if peclet < 0 or diffusivity <= 0:
            raise ValueError("peclet must be >= 0 and diffusivity positive")
        n = int(num_points)
        h = 1.0 / (n + 1)
        velocity = 2.0 * float(diffusivity) * float(peclet) / h
        diagonal = 2.0 * float(diffusivity) / h**2
        upper = -float(diffusivity) / h**2 + velocity / (2.0 * h)
        lower = -float(diffusivity) / h**2 - velocity / (2.0 * h)
        if assembly == "structured":
            # non-symmetric tridiagonal stored as CSR: O(nnz) assembly, and
            # the non-normal κ₂ — which has no closed form — is estimated
            # matrix-free by Golub–Kahan bidiagonalisation (safety-widened,
            # so the pinned value over-covers the true spectrum).
            idx = np.arange(n - 1)
            rows = np.concatenate([np.arange(n), idx, idx + 1])
            cols = np.concatenate([np.arange(n), idx + 1, idx])
            values = np.concatenate([np.full(n, diagonal),
                                     np.full(n - 1, upper),
                                     np.full(n - 1, lower)])
            matrix = CSROperator.from_coo(rows, cols, values, n)
            kappa = estimate_operator_condition(matrix, rng=0)
        elif assembly == "dense":
            check_dense_assembly(n, self.name)
            diffusion = (float(diffusivity) / h**2
                         * tridiagonal_toeplitz(n, 2.0, -1.0))
            convection = np.zeros((n, n))
            idx = np.arange(n - 1)
            convection[idx, idx + 1] = velocity / (2.0 * h)
            convection[idx + 1, idx] = -velocity / (2.0 * h)
            matrix = diffusion + convection
            # dense route keeps the exact measured κ₂ (one-off SVD).
            kappa = float(np.linalg.cond(matrix, 2))
        else:
            raise ValueError(
                f"assembly must be 'structured' or 'dense', got {assembly!r}")
        forcing = np.ones(n) / np.sqrt(n)
        rhs_list = [forcing] + random_rhs_list(n, num_rhs - 1, as_generator(rng))
        return solved_workloads(
            f"convdiff-n{n}-p{peclet:g}", matrix, rhs_list, kappa,
            {"num_points": n, "peclet": float(peclet),
             "velocity": velocity, "diffusivity": float(diffusivity),
             "assembly": assembly})


# ---------------------------------------------------------------------- #
class HelmholtzFamily(ProblemFamily):
    """Shifted (indefinite) Helmholtz operator ``T − σI`` with analytic κ.

    The default shift sits strictly between the two smallest Laplacian
    eigenvalues, so the operator is indefinite (exactly one negative
    eigenvalue) yet safely invertible — the regime where classical iterative
    methods struggle and the QSVT's sign-agnostic ``1/x`` polynomial does
    not care.
    """

    name = "helmholtz"
    description = ("shifted Helmholtz (indefinite but invertible, "
                   "analytic kappa)")

    def _shift(self, n: int, shift, shift_fraction: float) -> float:
        lam = stencil_eigenvalues(n)
        if shift is not None:
            value = float(shift)
            if np.min(np.abs(lam - value)) < 1e-12:
                raise ValueError("shift coincides with a Laplacian eigenvalue; "
                                 "the operator would be singular")
            return value
        if not 0.0 < shift_fraction < 1.0:
            raise ValueError("shift_fraction must be in (0, 1)")
        return float(lam[0] + shift_fraction * (lam[1] - lam[0]))

    def analytic_condition_number(self, *, num_points: int = 16, shift=None,
                                  shift_fraction: float = 0.5,
                                  num_rhs: int = 1,
                                  assembly: str = "structured",
                                  kappa_source: str = "analytic",
                                  rng=0) -> float:
        del num_rhs, assembly, kappa_source, rng  # no influence on the spectrum
        lam = stencil_eigenvalues(num_points)
        gaps = np.abs(lam - self._shift(int(num_points), shift, shift_fraction))
        return float(gaps.max() / gaps.min())

    def workloads(self, *, num_points: int = 16, shift=None,
                  shift_fraction: float = 0.5, num_rhs: int = 1,
                  assembly: str = "structured",
                  kappa_source: str = "analytic", rng=0
                  ) -> list[LinearSystemWorkload]:
        if num_points < 2 or num_rhs < 1:
            raise ValueError("num_points must be >= 2 and num_rhs >= 1")
        n = int(num_points)
        sigma = self._shift(n, shift, shift_fraction)
        if assembly == "structured":
            # T − σI stays tridiagonal Toeplitz (banded LU solves, exact
            # closed-form extreme eigenvalues; the *indefinite* min |λ| has
            # no endpoint formula, which is why the default pins analytic κ).
            matrix = BandedOperator.toeplitz(
                n, {0: 2.0 - sigma, 1: -1.0, -1: -1.0})
        elif assembly == "dense":
            check_dense_assembly(n, self.name)
            matrix = tridiagonal_toeplitz(n, 2.0, -1.0) - sigma * np.eye(n)
        else:
            raise ValueError(
                f"assembly must be 'structured' or 'dense', got {assembly!r}")
        if kappa_source == "analytic":
            kappa = self.analytic_condition_number(num_points=n, shift=sigma)
        elif kappa_source == "estimated":
            # Lanczos Ritz values resolve the interior min |λ| matrix-free —
            # the route workloads without a closed-form spectrum would take.
            operator = (matrix if is_structured_operator(matrix)
                        else BandedOperator.from_dense(matrix))
            kappa = float(estimate_operator_condition(operator, rng=0))
        else:
            raise ValueError(
                "kappa_source must be 'analytic' or 'estimated', "
                f"got {kappa_source!r}")
        gaps = stencil_eigenvalues(n) - sigma
        wave = np.sin(np.pi * _interior_grid(n))
        rhs_list = ([wave / np.linalg.norm(wave)]
                    + random_rhs_list(n, num_rhs - 1, as_generator(rng)))
        return solved_workloads(
            f"helmholtz-n{n}-s{sigma:.3g}", matrix, rhs_list, kappa,
            {"num_points": n, "shift": sigma, "assembly": assembly,
             "kappa_source": kappa_source,
             "indefinite": bool((gaps < 0).any() and (gaps > 0).any())})
