"""Graph-Laplacian problem families.

Laplacian systems ``(L + γI) x = b`` are the workhorse of spectral graph
methods (effective resistances, semi-supervised labelling, Laplacian
smoothing).  ``L`` itself is singular (the all-ones kernel), so the family
regularises with ``γ > 0`` — the standard ridge term — which makes the
condition number ``(γ + λ_max)/γ`` an explicit knob.  Path, cycle and grid
topologies have closed-form spectra (analytic κ); random-regular graphs are
sampled from the configuration model and measured.
"""

from __future__ import annotations

import numpy as np

from ..linalg import CSROperator, DiagonalShiftOperator
from ..utils import as_generator
from .base import (
    ProblemFamily,
    check_dense_assembly,
    random_rhs_list,
    solved_workloads,
)

__all__ = ["GraphLaplacianFamily", "graph_laplacian", "graph_laplacian_operator"]

_TOPOLOGIES = ("path", "cycle", "grid", "random-regular")


def _path_laplacian_eigenvalues(n: int) -> np.ndarray:
    """Spectrum ``4 sin²(kπ/(2n))``, ``k = 0..n-1`` of the path Laplacian."""
    k = np.arange(n)
    return 4.0 * np.sin(k * np.pi / (2.0 * n)) ** 2


def _path_laplacian(n: int) -> np.ndarray:
    lap = np.zeros((n, n))
    idx = np.arange(n - 1)
    lap[idx, idx + 1] = lap[idx + 1, idx] = -1.0
    np.fill_diagonal(lap, -lap.sum(axis=1))
    return lap


def _random_regular_adjacency(n: int, degree: int, gen,
                              max_tries: int = 500) -> np.ndarray:
    """Simple ``degree``-regular graph via configuration-model rejection.

    Shuffle ``n * degree`` stubs, pair them up, reject pairings with self
    loops or parallel edges.  For the small, sparse settings used here
    (``n <= a few hundred``, ``degree`` small) the acceptance probability is
    ``≈ exp((1 - d²)/4)`` — a handful of tries.
    """
    if (n * degree) % 2:
        raise ValueError("n * degree must be even for a regular graph")
    if not 0 < degree < n:
        raise ValueError("degree must be in (0, n)")
    for _ in range(max_tries):
        stubs = np.repeat(np.arange(n), degree)
        gen.shuffle(stubs)
        pairs = stubs.reshape(-1, 2)
        adjacency = np.zeros((n, n))
        for u, v in pairs:
            if u == v or adjacency[u, v]:
                break
            adjacency[u, v] = adjacency[v, u] = 1.0
        else:
            return adjacency
    raise RuntimeError(
        f"failed to sample a simple {degree}-regular graph on {n} nodes "
        f"in {max_tries} tries")


def _topology_edges(topology: str, n: int) -> np.ndarray:
    """Edge list ``(E, 2)`` of the deterministic topologies."""
    if topology == "path":
        k = np.arange(n - 1)
        return np.column_stack([k, k + 1])
    if topology == "cycle":
        if n < 3:
            raise ValueError("cycle topology needs >= 3 nodes (a 2-cycle is "
                             "a multigraph)")
        k = np.arange(n)
        return np.column_stack([k, (k + 1) % n])
    if topology == "grid":
        side = round(np.sqrt(n))
        if side * side != n:
            raise ValueError(f"grid topology needs a square node count, got {n}")
        nodes = np.arange(n).reshape(side, side)
        horizontal = np.column_stack([nodes[:, :-1].ravel(),
                                      nodes[:, 1:].ravel()])
        vertical = np.column_stack([nodes[:-1, :].ravel(),
                                    nodes[1:, :].ravel()])
        return np.concatenate([horizontal, vertical])
    raise ValueError(f"unknown topology {topology!r}; choose from {_TOPOLOGIES}")


def _laplacian_max_eigenvalue(topology: str, n: int) -> float | None:
    """Closed-form ``λ_max`` of the combinatorial Laplacian, where known."""
    if topology == "path":
        return float(_path_laplacian_eigenvalues(n)[-1])
    if topology == "cycle":
        k = np.arange(n)
        return float(np.max(2.0 - 2.0 * np.cos(2.0 * np.pi * k / n)))
    if topology == "grid":
        side = round(np.sqrt(n))
        if side * side != n:
            return None
        return float(2.0 * _path_laplacian_eigenvalues(side)[-1])
    return None


def graph_laplacian_operator(topology: str, num_nodes: int) -> CSROperator:
    """Combinatorial Laplacian of a deterministic topology in CSR form.

    ``O(E)`` assembly and storage; the closed-form Laplacian spectrum
    (``λ_min = 0`` and the analytic ``λ_max``) rides along as exact bounds,
    so the downstream ridge shift knows its condition number without any
    dense work.
    """
    n = int(num_nodes)
    if n < 2:
        raise ValueError("num_nodes must be >= 2")
    edges = _topology_edges(topology, n)
    u, v = edges[:, 0], edges[:, 1]
    rows = np.concatenate([u, v, u, v])
    cols = np.concatenate([v, u, u, v])
    vals = np.concatenate([-np.ones(2 * len(edges)), np.ones(2 * len(edges))])
    lam_max = _laplacian_max_eigenvalue(topology, n)
    bounds = None if lam_max is None else (0.0, lam_max)
    return CSROperator.from_coo(rows, cols, vals, n, spectrum_bounds=bounds,
                                symmetric=True)


def graph_laplacian(topology: str, num_nodes: int, *, degree: int = 3,
                    rng=None) -> np.ndarray:
    """Combinatorial Laplacian ``D − A`` of the requested topology (dense)."""
    n = int(num_nodes)
    if n < 2:
        raise ValueError("num_nodes must be >= 2")
    if topology == "path":
        return _path_laplacian(n)
    if topology == "cycle":
        if n < 3:
            raise ValueError("cycle topology needs >= 3 nodes (a 2-cycle is "
                             "a multigraph)")
        lap = _path_laplacian(n)
        lap[0, -1] = lap[-1, 0] = -1.0
        lap[0, 0] = lap[-1, -1] = 2.0
        return lap
    if topology == "grid":
        side = round(np.sqrt(n))
        if side * side != n:
            raise ValueError(f"grid topology needs a square node count, got {n}")
        path = _path_laplacian(side)
        eye = np.eye(side)
        return np.kron(eye, path) + np.kron(path, eye)
    if topology == "random-regular":
        adjacency = _random_regular_adjacency(n, int(degree), as_generator(rng))
        return np.diag(adjacency.sum(axis=1)) - adjacency
    raise ValueError(f"unknown topology {topology!r}; choose from {_TOPOLOGIES}")


class GraphLaplacianFamily(ProblemFamily):
    """Regularised graph-Laplacian systems ``(L + γI) x = b``."""

    name = "graph-laplacian"
    description = ("regularised graph Laplacians (path/cycle/grid/"
                   "random-regular; kappa set by the ridge term)")

    def analytic_condition_number(self, *, topology: str = "path",
                                  num_nodes: int = 16,
                                  regularization: float = 0.1,
                                  degree: int = 3, num_rhs: int = 1,
                                  assembly: str = "structured",
                                  rng=0) -> float | None:
        """Closed-form ``(γ + λ_max)/γ`` for the spectra known analytically."""
        del degree, num_rhs, assembly, rng  # sampling knobs; no closed form uses them
        n, gamma = int(num_nodes), float(regularization)
        if topology == "cycle" and n < 3:
            raise ValueError("cycle topology needs >= 3 nodes")
        lam_max = _laplacian_max_eigenvalue(topology, n)
        if lam_max is None:
            return None  # random-regular / non-square grid: measure instead
        return float((gamma + lam_max) / gamma)

    def workloads(self, *, topology: str = "path", num_nodes: int = 16,
                  regularization: float = 0.1, degree: int = 3,
                  num_rhs: int = 1, assembly: str = "structured", rng=0):
        if regularization <= 0:
            raise ValueError(
                "regularization must be positive (the raw Laplacian is "
                "singular: constant vectors are in its kernel)")
        if num_rhs < 1:
            raise ValueError("num_rhs must be >= 1")
        if assembly not in ("structured", "dense"):
            raise ValueError(
                f"assembly must be 'structured' or 'dense', got {assembly!r}")
        n, gamma = int(num_nodes), float(regularization)
        gen = as_generator(rng)
        # random-regular graphs are sampled dense (the configuration model is
        # O(n²) anyway and their κ has no closed form); the deterministic
        # topologies assemble O(E) CSR Laplacians with exact spectrum bounds
        # and apply the ridge as a diagonal shift.
        if assembly == "structured" and topology != "random-regular":
            laplacian = graph_laplacian_operator(topology, n)
            matrix = DiagonalShiftOperator(laplacian, shift=gamma)
        else:
            check_dense_assembly(n, self.name)
            laplacian = graph_laplacian(topology, n, degree=degree, rng=gen)
            matrix = laplacian + gamma * np.eye(n)
        kappa = self.analytic_condition_number(
            topology=topology, num_nodes=n, regularization=gamma)
        if kappa is None:
            kappa = float(np.linalg.cond(matrix, 2))
        rhs_list = random_rhs_list(n, num_rhs, gen)
        metadata = {"topology": topology, "num_nodes": n,
                    "regularization": gamma, "assembly": assembly}
        if topology == "random-regular":
            metadata["degree"] = int(degree)
        return solved_workloads(
            f"graph-{topology}-n{n}", matrix, rhs_list, kappa, metadata)
