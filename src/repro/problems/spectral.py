"""Prescribed-spectrum banded systems via Lanczos tridiagonalisation.

The Sec. IV random matrices prescribe a *condition number*; this family
prescribes the entire *spectrum* while keeping the matrix banded
(tridiagonal), which matters for the quantum side: banded matrices admit the
cheap structured block-encodings of :mod:`repro.blockencoding.banded` rather
than the generic FABLE circuit.

Construction: run the Lanczos recurrence (with full reorthogonalisation —
exact arithmetic behaviour at these sizes) on ``diag(λ)`` with a random
start vector.  After ``n`` steps the Jacobi matrix ``T = QᵀΛQ`` is symmetric
tridiagonal and *exactly similar* to ``Λ``: every eigenvalue lands where it
was prescribed, so κ and the spectral gaps are analytic by construction.
"""

from __future__ import annotations

import numpy as np

from ..utils import as_generator
from .base import ProblemFamily, random_rhs_list, solved_workloads

__all__ = ["PrescribedSpectrumFamily", "lanczos_tridiagonal", "spectrum_profile"]


def spectrum_profile(n: int, condition_number: float,
                     distribution: str = "logarithmic") -> np.ndarray:
    """Eigenvalue profile in ``[1/κ, 1]`` (mirrors the Sec. IV generators)."""
    if condition_number <= 1.0:
        raise ValueError(
            "condition_number must be > 1: a kappa=1 spectrum collapses to "
            "repeated eigenvalues, which the Lanczos construction cannot "
            "tridiagonalise")
    if n == 1:
        return np.array([1.0])
    if distribution == "logarithmic":
        return np.logspace(0.0, -np.log10(condition_number), n)
    if distribution == "linear":
        return np.linspace(1.0, 1.0 / condition_number, n)
    if distribution == "cluster":
        # one small eigenvalue, the rest clustered just below 1 — kept
        # *distinct* (spread 1e-6) so the Lanczos similarity stays well-posed.
        lam = 1.0 - np.arange(n) * (1e-6 / max(n - 1, 1))
        lam[-1] = 1.0 / condition_number
        return lam
    raise ValueError(f"unknown eigenvalue distribution {distribution!r}")


def lanczos_tridiagonal(eigenvalues, *, rng=None) -> np.ndarray:
    """Symmetric tridiagonal matrix with exactly the given eigenvalues.

    Lanczos on ``A = diag(λ)`` with a dense random start vector; full
    reorthogonalisation (twice, the classical "twice is enough") keeps the
    basis orthogonal to machine precision, so the recurrence coefficients
    form a Jacobi matrix unitarily similar to ``diag(λ)``.
    """
    lam = np.asarray(eigenvalues, dtype=float)
    n = lam.size
    if n < 1:
        raise ValueError("need at least one eigenvalue")
    if np.unique(lam).size != n:
        raise ValueError("eigenvalues must be distinct (repeated eigenvalues "
                         "break down the Lanczos recurrence)")
    gen = as_generator(rng)
    basis = np.zeros((n, n))
    alpha = np.zeros(n)
    beta = np.zeros(max(n - 1, 0))
    start = gen.standard_normal(n)
    basis[:, 0] = start / np.linalg.norm(start)
    for j in range(n):
        w = lam * basis[:, j]            # A @ q_j with A diagonal
        alpha[j] = basis[:, j] @ w
        w = w - alpha[j] * basis[:, j]
        if j > 0:
            w = w - beta[j - 1] * basis[:, j - 1]
        for _ in range(2):               # full reorthogonalisation
            w = w - basis[:, :j + 1] @ (basis[:, :j + 1].T @ w)
        if j < n - 1:
            beta[j] = np.linalg.norm(w)
            if beta[j] < 1e-13:
                raise RuntimeError(
                    "Lanczos breakdown: the start vector is (numerically) "
                    "deficient in some eigendirection; use another rng seed")
            basis[:, j + 1] = w / beta[j]
    tri = np.diag(alpha)
    if n > 1:
        tri += np.diag(beta, 1) + np.diag(beta, -1)
    return tri


class PrescribedSpectrumFamily(ProblemFamily):
    """Tridiagonal systems whose full spectrum is chosen up front."""

    name = "prescribed-spectrum"
    description = ("banded (tridiagonal) systems with a fully prescribed "
                   "spectrum, built by Lanczos similarity")

    def analytic_condition_number(self, *, dimension: int = 16,
                                  condition_number: float = 50.0,
                                  distribution: str = "logarithmic",
                                  num_rhs: int = 1, rng=0) -> float:
        del num_rhs, rng  # no influence on the prescribed spectrum
        lam = np.abs(spectrum_profile(int(dimension), float(condition_number),
                                      distribution))
        return float(lam.max() / lam.min())

    def workloads(self, *, dimension: int = 16, condition_number: float = 50.0,
                  distribution: str = "logarithmic", num_rhs: int = 1, rng=0):
        if num_rhs < 1:
            raise ValueError("num_rhs must be >= 1")
        n = int(dimension)
        gen = as_generator(rng)
        spectrum = spectrum_profile(n, float(condition_number), distribution)
        matrix = lanczos_tridiagonal(spectrum, rng=gen)
        kappa = self.analytic_condition_number(
            dimension=n, condition_number=condition_number,
            distribution=distribution)
        rhs_list = random_rhs_list(n, num_rhs, gen)
        return solved_workloads(
            f"spectrum-n{n}-k{condition_number:g}", matrix, rhs_list, kappa,
            {"dimension": n, "condition_number": float(condition_number),
             "distribution": distribution, "bandwidth": 1})
