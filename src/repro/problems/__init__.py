"""Problem suite: diverse, checkable workload families for the solve engine.

The paper's experiments cover ``N = 16`` random matrices (Sec. IV) and the
1-D Poisson equation (Sec. III-C4).  This sub-package opens the workload
axis: every :class:`~repro.problems.base.ProblemFamily` below generates
linear systems with classically computed exact solutions and — where the
spectrum is known — an analytic condition number, then registers itself as
an engine scenario (:func:`repro.engine.build_scenario`) and as a κ growth
model (:func:`repro.core.cost_model.predicted_kappa`):

* ``poisson-2d`` / ``poisson-3d`` — Kronecker-assembled Laplacians;
* ``heat-chain`` — implicit-Euler time stepping: ordered solve *chains*
  against one fixed operator (the ideal cache/store workload);
* ``convection-diffusion`` — non-symmetric, tunable grid Péclet number;
* ``helmholtz`` — shifted, indefinite but invertible;
* ``graph-laplacian`` — path/cycle/grid/random-regular, ridge-regularised;
* ``prescribed-spectrum`` — banded systems with a fully chosen spectrum.

>>> from repro.engine import ScenarioRunner, build_scenario
>>> scenario = build_scenario("heat-chain", num_steps=16)
>>> report = ScenarioRunner(mode="serial").run(scenario.jobs)
>>> report.summary["cache"]["compiles"]        # one synthesis, 15 hits
1
"""

from __future__ import annotations

from ..core.cost_model import (
    kappa_model_names,
    register_kappa_model,
    unregister_kappa_model,
)
from ..engine.registry import register_scenario, unregister_scenario
from .base import (
    ProblemFamily,
    SolveChain,
    default_epsilon_l,
    random_rhs_list,
    solved_workloads,
    workload_jobs,
)
from .graphs import GraphLaplacianFamily, graph_laplacian
from .pde import (
    ConvectionDiffusionFamily,
    HeatEquationChainFamily,
    HelmholtzFamily,
    Poisson2DFamily,
    Poisson3DFamily,
    stencil_eigenvalues,
)
from .spectral import (
    PrescribedSpectrumFamily,
    lanczos_tridiagonal,
    spectrum_profile,
)

__all__ = [
    "ProblemFamily",
    "SolveChain",
    "default_epsilon_l",
    "workload_jobs",
    "random_rhs_list",
    "solved_workloads",
    "stencil_eigenvalues",
    "graph_laplacian",
    "lanczos_tridiagonal",
    "spectrum_profile",
    "Poisson2DFamily",
    "Poisson3DFamily",
    "HeatEquationChainFamily",
    "ConvectionDiffusionFamily",
    "HelmholtzFamily",
    "GraphLaplacianFamily",
    "PrescribedSpectrumFamily",
    "PROBLEM_FAMILIES",
    "register_problem_family",
    "unregister_problem_family",
]

from ..utils import Registry

#: registered family instances, keyed by family (= scenario) name — one
#: instance of the shared :class:`repro.utils.Registry`, like the scenario
#: and κ-model registries it mirrors.
PROBLEM_FAMILIES: Registry = Registry("problem family")


def register_problem_family(family: ProblemFamily, *,
                            overwrite: bool = False) -> ProblemFamily:
    """Hook a family into the scenario registry and the κ-model registry.

    After this call ``build_scenario(family.name, **params)`` produces the
    family's jobs and — when the family knows its spectrum —
    ``predicted_kappa(family.name, **params)`` evaluates its analytic
    condition number.  The scenario registry is the duplicate gatekeeper;
    once it accepts the name, the κ-model and family registries follow
    unconditionally so the three can never disagree about who owns a name.
    """
    has_analytic = (type(family).analytic_condition_number
                    is not ProblemFamily.analytic_condition_number)
    replacing = family.name in PROBLEM_FAMILIES
    if (has_analytic and not (overwrite or replacing)
            and family.name in kappa_model_names()):
        # a κ model owned by non-family code (e.g. the built-in
        # "poisson-1d") must not be clobbered implicitly — and the check
        # runs *before* the scenario registration so a refusal leaves no
        # half-registered state behind.
        raise ValueError(
            f"kappa model {family.name!r} is already registered outside the "
            "problem suite; pass overwrite=True to replace it")
    register_scenario(family.name, description=family.description,
                      overwrite=overwrite)(family.jobs)
    if has_analytic:
        register_kappa_model(family.name, family.analytic_condition_number,
                             overwrite=True)
    elif replacing:
        unregister_kappa_model(family.name)
    PROBLEM_FAMILIES.register(family.name, family, overwrite=True)
    return family


def unregister_problem_family(name: str) -> bool:
    """Remove a family from all three registries; returns whether it existed.

    Only names owned by the problem suite are touched — κ models registered
    directly with :func:`repro.core.cost_model.register_kappa_model` (e.g.
    the built-in ``"poisson-1d"``) are left alone.
    """
    family = PROBLEM_FAMILIES.get(name)
    if family is None:
        return False
    PROBLEM_FAMILIES.unregister(name)
    unregister_scenario(name)
    if (type(family).analytic_condition_number
            is not ProblemFamily.analytic_condition_number):
        # only the model this family registered — never one someone added
        # directly under a coincidentally equal name
        unregister_kappa_model(name)
    return True


# overwrite=True keeps this loop idempotent under module re-execution
# (importlib.reload, notebook autoreload); the duplicate guard is for
# third-party name collisions, not our own re-registration.
for _family in (Poisson2DFamily(), Poisson3DFamily(),
                HeatEquationChainFamily(), ConvectionDiffusionFamily(),
                HelmholtzFamily(), GraphLaplacianFamily(),
                PrescribedSpectrumFamily()):
    register_problem_family(_family, overwrite=True)
del _family
