"""Problem-suite substrate: the :class:`ProblemFamily` protocol and chains.

The paper's experiments stop at ``N = 16`` random matrices and the 1-D
Poisson specialisation; the engine built in PRs 1–3 (batched sweeps, the
compiled-solver cache, the synthesis store, shared-memory workers) needs
*diverse* workload streams to show what that machinery buys.  A
:class:`ProblemFamily` is the unit of diversity: it generates
:class:`~repro.applications.workloads.LinearSystemWorkload` lists (each with
a classically computed exact solution, so every result is checkable) and
wraps them into :class:`~repro.engine.runner.SolveJob`s that flow through
:class:`~repro.engine.runner.ScenarioRunner` /
:class:`~repro.engine.aio.AsyncSolveEngine` unchanged.

Families with known spectra report an **analytic condition number** — the
generalisation of the paper's ``κ = O(N²)`` Poisson formula — which is
pinned on the jobs (skipping the ``O(N³)`` SVD in the solver) and registered
as a κ growth model with :mod:`repro.core.cost_model` for the autotuner.

Time-stepping families additionally emit :class:`SolveChain`s: *ordered* job
sequences against one fixed operator, where every step shares the operator's
fingerprint — the ideal cache/store workload (one synthesis, ``T − 1`` cache
hits).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..applications.workloads import LinearSystemWorkload
from ..engine.runner import SolveJob
from ..linalg import random_rhs
from ..linalg.operators import (
    DENSE_MATERIALIZE_WALL,
    DENSE_WALL_ENV_VAR,
    dense_wall,
)
from ..utils import is_linear_operator, matrix_fingerprint

__all__ = [
    "ProblemFamily",
    "SolveChain",
    "DENSE_ASSEMBLY_WALL",
    "check_dense_assembly",
    "default_epsilon_l",
    "workload_jobs",
    "random_rhs_list",
    "solved_workloads",
]

#: dimension above which ``assembly="dense"`` refuses.  An ``N x N`` float64
#: array above this wall is ≥ 0.5 GiB *per copy* (assembly, SVD workspace,
#: cache entry, per-worker pickle), which is exactly the regime the
#: structured path exists for.  This is the *same* wall every
#: ``to_dense()`` materialisation honours
#: (:data:`repro.linalg.operators.DENSE_MATERIALIZE_WALL`), and the single
#: ``REPRO_DENSE_WALL`` environment override moves both together.
DENSE_ASSEMBLY_WALL = DENSE_MATERIALIZE_WALL


def check_dense_assembly(dimension: int, family: str) -> None:
    """Refuse dense assembly beyond the wall (see :data:`DENSE_ASSEMBLY_WALL`)."""
    wall = dense_wall()
    if int(dimension) > wall:
        raise ValueError(
            f"{family}: dense assembly of an N={dimension} system exceeds the "
            f"dense wall ({wall}); use assembly='structured' (the default) or "
            f"raise {DENSE_WALL_ENV_VAR} if you accept the memory cost")


def random_rhs_list(dimension: int, count: int, rng=None) -> list:
    """Unit-norm random right-hand sides (the multi-RHS variants' stream)."""
    return [random_rhs(dimension, rng=rng) for _ in range(count)]


def solved_workloads(name: str, matrix, rhs_list, kappa: float,
                     metadata: dict) -> list[LinearSystemWorkload]:
    """Package ``(A, b_i)`` pairs with their classical exact solutions.

    All workloads share the *same matrix object* (so downstream consumers —
    the runner's publish memo, the compiled-solver cache — treat them as one
    problem, which they are) and the exact solutions come from a single
    factorisation of the stacked right-hand-side block.  Structured
    operators solve through their own structure-exploiting route (Thomas /
    banded LU, Kronecker fast diagonalisation, CG) instead of a dense
    ``O(N³)`` factorisation.
    """
    if is_linear_operator(matrix):
        solutions = matrix.solve(np.column_stack(rhs_list))
    else:
        solutions = np.linalg.solve(matrix, np.column_stack(rhs_list))
    workloads = []
    for index, rhs in enumerate(rhs_list):
        label = name if len(rhs_list) == 1 else f"{name}-rhs{index}"
        workloads.append(LinearSystemWorkload(
            name=label, matrix=matrix, rhs=rhs,
            solution=solutions[:, index], condition_number=float(kappa),
            metadata={**metadata, "rhs_index": index}))
    return workloads


def default_epsilon_l(kappa: float, *, safety: float = 0.1,
                      ceiling: float = 1e-2) -> float:
    """κ-aware inner accuracy: ``min(ceiling, safety/κ)``.

    Guarantees the Theorem III.1 contraction ``ε_l κ <= safety < 1`` for any
    family, so jobs built with default parameters always converge; the
    autotuner refines this starting point against the cost model.
    """
    return float(min(ceiling, safety / max(float(kappa), 1.0)))


def workload_jobs(workloads, *, epsilon_l: float | None = None,
                  target_accuracy: float | None = 1e-8,
                  backend: str = "auto", family: str | None = None
                  ) -> list[SolveJob]:
    """Wrap workloads into runnable jobs, pinning each workload's κ.

    ``epsilon_l=None`` (default) picks the κ-aware
    :func:`default_epsilon_l` per workload; chains pass the same ε_l for
    every step so the whole sequence maps onto one compiled-solver cache
    entry.
    """
    jobs = []
    for workload in workloads:
        kappa = float(workload.condition_number)
        metadata = dict(workload.metadata)
        if family is not None:
            metadata.setdefault("family", family)
        jobs.append(SolveJob(
            name=workload.name, matrix=workload.matrix, rhs=workload.rhs,
            epsilon_l=(default_epsilon_l(kappa) if epsilon_l is None
                       else float(epsilon_l)),
            target_accuracy=target_accuracy, backend=backend, kappa=kappa,
            metadata=metadata))
    return jobs


@dataclass
class SolveChain:
    """An ordered sequence of solves against one fixed operator.

    Implicit time stepping (``A u_{k+1} = u_k``) produces exactly this shape:
    every step presents the *same matrix object* with a new right-hand side.
    All steps therefore share one fingerprint — a chain of ``T`` steps costs
    one synthesis and ``T − 1`` compiled-solver cache hits.

    Attributes
    ----------
    name:
        Chain identifier (also stamped into each step's metadata).
    matrix:
        The fixed operator, shared by reference across every step.
    workloads:
        Ordered per-step workloads; ``workloads[k].rhs`` is the state after
        ``k`` steps and ``workloads[k].solution`` the classically computed
        state after ``k + 1``.
    metadata:
        Chain-level parameters (``dt``, diffusivity, ...).
    """

    name: str
    matrix: np.ndarray
    workloads: list[LinearSystemWorkload]
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.workloads)

    @property
    def fingerprint(self) -> str:
        """Content hash of the shared operator (the cache key prefix)."""
        return matrix_fingerprint(self.matrix)

    @property
    def states(self) -> np.ndarray:
        """Classically computed trajectory, ``(T + 1, N)`` including ``u_0``."""
        return np.vstack([self.workloads[0].rhs]
                         + [w.solution for w in self.workloads])

    def jobs(self, *, epsilon_l: float | None = None,
             target_accuracy: float | None = 1e-8,
             backend: str = "auto") -> list[SolveJob]:
        """Ordered jobs for the chain (one shared ε_l across all steps)."""
        if epsilon_l is None:
            epsilon_l = default_epsilon_l(self.workloads[0].condition_number)
        return workload_jobs(self.workloads, epsilon_l=epsilon_l,
                             target_accuracy=target_accuracy, backend=backend,
                             family=self.metadata.get("family"))


class ProblemFamily(abc.ABC):
    """A named, parameterised generator of checkable linear-system workloads.

    Subclasses set :attr:`name` / :attr:`description` and implement
    :meth:`workloads`; everything else (job wrapping, scenario registration,
    κ-model registration) is inherited.  ``workloads(**params)`` must be
    deterministic for fixed parameters — every random choice is drawn from a
    seeded generator parameter — so tests and benchmarks can rebuild the
    exact solutions a run is validated against.
    """

    #: registry name (also the scenario name in :mod:`repro.engine.registry`).
    name: str = ""
    #: one-line summary shown by ``list_scenarios()``.
    description: str = ""

    @abc.abstractmethod
    def workloads(self, **params) -> list[LinearSystemWorkload]:
        """Generate the family's workloads for the given parameters."""

    def analytic_condition_number(self, **params) -> float | None:
        """Closed-form κ for these parameters; ``None`` when unknown.

        Families with known spectra override this; the value doubles as the
        κ growth model registered with :mod:`repro.core.cost_model`.
        """
        return None

    def jobs(self, *, epsilon_l: float | None = None,
             target_accuracy: float | None = 1e-8, backend: str = "auto",
             **params) -> list[SolveJob]:
        """Runnable jobs for this family (the scenario-registry builder).

        Solver knobs (``epsilon_l``, ``target_accuracy``, ``backend``) are
        split from the family parameters so the same workload stream can be
        replayed under different configurations — which is exactly what the
        autotuner does.
        """
        return workload_jobs(self.workloads(**params), epsilon_l=epsilon_l,
                             target_accuracy=target_accuracy, backend=backend,
                             family=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
