"""Normalisation and de-normalisation of quantum solutions (Remark 2).

Quantum linear solvers return the *direction* ``η = x / ||x||`` of the
solution (the right-hand side must be normalised before encoding).  The norm
is recovered classically by solving the one-dimensional problem

.. math::  \\mu^* = \\operatorname*{argmin}_{\\mu} \\; \\| r - \\mu A η \\|,

where ``r`` is the right-hand side of the solve (``b`` for the initial solve,
the residual ``r_i`` during refinement).  The minimiser has the closed form
``μ* = ⟨Aη, r⟩ / ||Aη||²``; the paper instead quotes Brent's method (Ref. [7]),
so a derivative-free Brent minimiser is implemented here as well (and used
when ``method="brent"``) — both agree to the requested tolerance and cost
``O(N²)`` for the matrix-vector product plus ``O(log 1/ε)`` for the search.
"""

from __future__ import annotations

import numpy as np

from ..utils import as_vector, check_square

__all__ = ["brent_minimize", "recover_scale"]

_GOLDEN = 0.3819660112501051  # (3 - sqrt(5)) / 2


def brent_minimize(func, bracket: tuple[float, float], *, tolerance: float = 1e-12,
                   max_iterations: int = 200) -> float:
    """Minimise a scalar function on an interval with Brent's method.

    A from-scratch implementation of the classical parabolic-interpolation /
    golden-section hybrid (Brent 1973, the paper's Ref. [7]).

    Parameters
    ----------
    func:
        Scalar function to minimise.
    bracket:
        Interval ``(a, b)`` assumed to contain the minimiser.
    tolerance:
        Absolute tolerance on the argument.
    max_iterations:
        Iteration budget.
    """
    a, b = (float(bracket[0]), float(bracket[1]))
    if a > b:
        a, b = b, a
    x = w = v = a + _GOLDEN * (b - a)
    fx = fw = fv = func(x)
    delta = delta_prev = 0.0
    for _ in range(max_iterations):
        midpoint = 0.5 * (a + b)
        tol1 = tolerance * abs(x) + 1e-15
        tol2 = 2.0 * tol1
        if abs(x - midpoint) <= tol2 - 0.5 * (b - a):
            return x
        use_golden = True
        if abs(delta_prev) > tol1:
            # try a parabolic step through (v, fv), (w, fw), (x, fx)
            r = (x - w) * (fx - fv)
            q = (x - v) * (fx - fw)
            p = (x - v) * q - (x - w) * r
            q = 2.0 * (q - r)
            if q > 0.0:
                p = -p
            q = abs(q)
            if abs(p) < abs(0.5 * q * delta_prev) and q * (a - x) < p < q * (b - x):
                delta_prev = delta
                delta = p / q
                candidate = x + delta
                if candidate - a < tol2 or b - candidate < tol2:
                    delta = tol1 if midpoint >= x else -tol1
                use_golden = False
        if use_golden:
            delta_prev = (b - x) if x < midpoint else (a - x)
            delta = _GOLDEN * delta_prev
        candidate = x + (delta if abs(delta) >= tol1 else (tol1 if delta > 0 else -tol1))
        f_candidate = func(candidate)
        if f_candidate <= fx:
            if candidate >= x:
                a = x
            else:
                b = x
            v, w, x = w, x, candidate
            fv, fw, fx = fw, fx, f_candidate
        else:
            if candidate < x:
                a = candidate
            else:
                b = candidate
            if f_candidate <= fw or w == x:
                v, w = w, candidate
                fv, fw = fw, f_candidate
            elif f_candidate <= fv or v == x or v == w:
                v, fv = candidate, f_candidate
    return x


def recover_scale(a, direction, rhs, *, method: str = "analytic",
                  tolerance: float = 1e-14) -> float:
    """Recover the solution norm ``μ`` such that ``μ A η ≈ rhs`` (Remark 2).

    Parameters
    ----------
    a:
        System matrix.
    direction:
        Unit direction ``η`` returned by the quantum solver.
    rhs:
        Right-hand side of the solve (``b`` or the current residual).
    method:
        ``"analytic"`` (closed form, default) or ``"brent"`` (derivative-free
        line search, as quoted by the paper).
    """
    mat = check_square(a, name="A")
    eta = as_vector(direction, name="direction").astype(float)
    target = as_vector(rhs, name="rhs").astype(float)
    a_eta = mat @ eta
    denom = float(a_eta @ a_eta)
    if denom == 0.0:
        return 0.0
    analytic = float(a_eta @ target) / denom
    if method == "analytic":
        return analytic
    if method != "brent":
        raise ValueError("method must be 'analytic' or 'brent'")

    def objective(mu: float) -> float:
        return float(np.linalg.norm(target - mu * a_eta))

    radius = max(1.0, 2.0 * abs(analytic))
    return brent_minimize(objective, (analytic - radius, analytic + radius),
                          tolerance=tolerance)
