"""Classical mixed-precision iterative refinement (Algorithm 1 of the paper).

The classical analogue of the hybrid scheme replaces the QPU by a low-precision
LU factorisation: the factorisation (and every triangular solve) runs at
precision ``u_l`` while residuals and updates are computed at the working
precision ``u``.  :class:`ClassicalLUSolver` implements the inner-solver
protocol expected by :class:`repro.core.refinement.MixedPrecisionRefinement`,
so the same driver runs both Algorithm 1 and Algorithm 2 — which is exactly
the structural point the paper makes.
"""

from __future__ import annotations

import time

import numpy as np

from ..linalg import lu_factor, scaled_residual
from ..precision import PrecisionContext, get_precision
from ..utils import as_vector, check_square
from .results import RefinementResult, SingleSolveRecord

__all__ = ["ClassicalLUSolver", "mixed_precision_lu_refinement"]


class ClassicalLUSolver:
    """LU-based inner solver running at a low precision ``u_l``.

    Parameters
    ----------
    matrix:
        System matrix.
    low_precision:
        Precision of the factorisation and of the triangular solves
        (name, dtype or :class:`repro.precision.Precision`).
    """

    def __init__(self, matrix, *, low_precision="fp32") -> None:
        self.matrix = check_square(np.asarray(matrix, dtype=float), name="A")
        self.low_precision = get_precision(low_precision)
        self.factorization = lu_factor(self.matrix, precision=self.low_precision)
        #: nominal relative accuracy of one solve, used by the convergence
        #: bound: a backward-stable solve at unit roundoff ``u_l`` delivers a
        #: relative error of order ``u_l · κ``; we report ``u_l`` here and let
        #: the refinement driver multiply by κ.
        self.epsilon_l = self.low_precision.unit_roundoff

    def describe(self) -> dict:
        """Metadata recorded in refinement results."""
        return {"backend": "classical-lu", "low_precision": self.low_precision.name,
                "epsilon_l": self.epsilon_l}

    def solve(self, rhs) -> SingleSolveRecord:
        """Solve ``A x = rhs`` with the stored low-precision factors.

        The right-hand side is normalised before it is rounded to the low
        precision and the solution is rescaled afterwards — the classical
        counterpart of Remark 2 of the paper, and the standard trick that
        prevents the residual (whose norm shrinks geometrically during
        refinement) from underflowing in fp16/bf16.
        """
        b = as_vector(rhs, name="rhs").astype(float)
        norm_rhs = np.linalg.norm(b)
        start = time.perf_counter()
        if norm_rhs == 0.0:
            x = np.zeros_like(b)
        else:
            x = norm_rhs * self.factorization.solve(b / norm_rhs,
                                                    precision=self.low_precision)
        elapsed = time.perf_counter() - start
        norm = np.linalg.norm(x)
        direction = x / norm if norm > 0 else x
        omega = scaled_residual(self.matrix, x, b) if np.linalg.norm(b) > 0 else 0.0
        return SingleSolveRecord(x=x, direction=direction, scale=float(norm),
                                 scaled_residual=float(omega),
                                 block_encoding_calls=0, polynomial_degree=0,
                                 success_probability=1.0, shots=0, wall_time=elapsed)


def mixed_precision_lu_refinement(matrix, rhs, *, low_precision="fp32",
                                  working_precision="fp64",
                                  target_accuracy: float = 1e-12,
                                  max_iterations: int | None = None,
                                  x_true=None) -> RefinementResult:
    """Run Algorithm 1: LU at ``u_l`` + iterative refinement at ``u``.

    This is a convenience wrapper building a :class:`ClassicalLUSolver` and
    handing it to the generic refinement driver.
    """
    from .refinement import MixedPrecisionRefinement

    solver = ClassicalLUSolver(matrix, low_precision=low_precision)
    refinement = MixedPrecisionRefinement(
        solver,
        target_accuracy=target_accuracy,
        max_iterations=max_iterations,
        precision=PrecisionContext(working=working_precision, low=low_precision),
        track_communication=False,
    )
    return refinement.solve(rhs, x_true=x_true)
