"""Classical preconditioning for the hybrid solver (paper Sec. I / Sec. III-C4).

The paper points out that the condition number drives every quantum cost
(polynomial degree, number of refinement iterations) and names preconditioning
as the natural classical technique to attack it — e.g. the unpreconditioned
1-D Poisson matrix has ``κ = O(N²)``, which makes the QSVT expensive.  This
module provides simple, cheap preconditioners that are applied **classically
on the CPU** before the system is handed to the QPU pipeline:

* :class:`JacobiPreconditioner` — diagonal scaling ``M = diag(A)``;
* :class:`RowEquilibrationPreconditioner` — scaling by the row 2-norms, the
  standard cure for badly row-scaled systems;
* :class:`IdentityPreconditioner` — no-op, useful as a control in ablations.

:func:`preconditioned_refine` wraps the usual pipeline: it builds the
left-preconditioned system ``(M^{-1}A) x = M^{-1} b``, runs the QSVT +
iterative-refinement solver on it, and reports both the original and the
preconditioned condition numbers so benchmarks can quantify the reduction of
quantum resources.
"""

from __future__ import annotations

import abc

import numpy as np

from ..exceptions import SingularMatrixError
from ..linalg import condition_number
from ..utils import as_vector, check_square
from .refinement import MixedPrecisionRefinement
from .results import RefinementResult

__all__ = [
    "Preconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "RowEquilibrationPreconditioner",
    "make_preconditioner",
    "preconditioned_refine",
]


class Preconditioner(abc.ABC):
    """Left preconditioner ``M`` applied classically as ``M^{-1} A x = M^{-1} b``."""

    #: name used in reports.
    name: str = "preconditioner"

    @abc.abstractmethod
    def build(self, matrix: np.ndarray) -> None:
        """Compute the preconditioner from the system matrix (O(N)–O(N²) work)."""

    @abc.abstractmethod
    def apply_inverse_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Return ``M^{-1} A``."""

    @abc.abstractmethod
    def apply_inverse_vector(self, vector: np.ndarray) -> np.ndarray:
        """Return ``M^{-1} v``."""

    # ------------------------------------------------------------------ #
    def preconditioned_system(self, matrix, rhs) -> tuple[np.ndarray, np.ndarray]:
        """Build ``(M^{-1}A, M^{-1}b)`` in one call."""
        mat = check_square(np.asarray(matrix, dtype=float), name="A")
        vec = as_vector(rhs, name="b").astype(float)
        self.build(mat)
        return self.apply_inverse_matrix(mat), self.apply_inverse_vector(vec)


class IdentityPreconditioner(Preconditioner):
    """No preconditioning (control case)."""

    name = "identity"

    def build(self, matrix: np.ndarray) -> None:
        return None

    def apply_inverse_matrix(self, matrix: np.ndarray) -> np.ndarray:
        return np.asarray(matrix, dtype=float)

    def apply_inverse_vector(self, vector: np.ndarray) -> np.ndarray:
        return np.asarray(vector, dtype=float)


class _DiagonalScalingPreconditioner(Preconditioner):
    """Shared implementation for preconditioners of the form ``M = diag(d)``."""

    def __init__(self) -> None:
        self._scale: np.ndarray | None = None

    @abc.abstractmethod
    def _diagonal(self, matrix: np.ndarray) -> np.ndarray:
        """Diagonal entries ``d`` of the preconditioner."""

    def build(self, matrix: np.ndarray) -> None:
        diag = self._diagonal(np.asarray(matrix, dtype=float))
        if np.any(np.abs(diag) < np.finfo(float).tiny):
            raise SingularMatrixError(
                f"{self.name} preconditioner: zero scaling entry encountered")
        self._scale = 1.0 / diag

    def _require_built(self) -> np.ndarray:
        if self._scale is None:
            raise RuntimeError("call build() (or preconditioned_system()) first")
        return self._scale

    def apply_inverse_matrix(self, matrix: np.ndarray) -> np.ndarray:
        return self._require_built()[:, None] * np.asarray(matrix, dtype=float)

    def apply_inverse_vector(self, vector: np.ndarray) -> np.ndarray:
        return self._require_built() * np.asarray(vector, dtype=float)


class JacobiPreconditioner(_DiagonalScalingPreconditioner):
    """Diagonal (Jacobi) preconditioner ``M = diag(A)``."""

    name = "jacobi"

    def _diagonal(self, matrix: np.ndarray) -> np.ndarray:
        return np.diag(matrix).copy()


class RowEquilibrationPreconditioner(_DiagonalScalingPreconditioner):
    """Row scaling ``M = diag(||A_{i,:}||₂)`` (equilibration)."""

    name = "row-equilibration"

    def _diagonal(self, matrix: np.ndarray) -> np.ndarray:
        return np.linalg.norm(matrix, axis=1)


def make_preconditioner(kind: str) -> Preconditioner:
    """Create a preconditioner from its name (``"identity"``, ``"jacobi"``,
    ``"row-equilibration"``/``"row"``)."""
    key = kind.lower()
    if key in ("identity", "none"):
        return IdentityPreconditioner()
    if key == "jacobi":
        return JacobiPreconditioner()
    if key in ("row", "row-equilibration", "equilibration"):
        return RowEquilibrationPreconditioner()
    raise ValueError(f"unknown preconditioner {kind!r}")


def preconditioned_refine(matrix, rhs, *, preconditioner: str | Preconditioner = "jacobi",
                          epsilon_l: float = 1e-2, target_accuracy: float = 1e-10,
                          backend: str = "auto", x_true=None,
                          **refinement_options) -> RefinementResult:
    """Run Algorithm 2 on the left-preconditioned system ``M^{-1}A x = M^{-1}b``.

    The preconditioner is applied classically (a CPU-side ``O(N²)`` scaling),
    reducing the condition number the QPU pipeline has to handle; the returned
    result's ``solver_info`` records the original and preconditioned condition
    numbers (``kappa_original`` / ``kappa_preconditioned``) so the quantum-cost
    reduction can be quantified.

    The residuals reported in the history are those of the *preconditioned*
    system (the quantity the stopping criterion acts on); the returned solution
    ``result.x`` solves the original system because left preconditioning does
    not change the solution.
    """
    from .qsvt_solver import QSVTLinearSolver

    precond = (preconditioner if isinstance(preconditioner, Preconditioner)
               else make_preconditioner(preconditioner))
    mat = check_square(np.asarray(matrix, dtype=float), name="A")
    vec = as_vector(rhs, name="b").astype(float)
    preconditioned_matrix, preconditioned_rhs = precond.preconditioned_system(mat, vec)

    solver = QSVTLinearSolver(preconditioned_matrix, epsilon_l=epsilon_l, backend=backend)
    driver = MixedPrecisionRefinement(solver, target_accuracy=target_accuracy,
                                      **refinement_options)
    result = driver.solve(preconditioned_rhs, x_true=x_true)
    result.solver_info = dict(result.solver_info)
    result.solver_info.update({
        "preconditioner": precond.name,
        "kappa_original": condition_number(mat),
        "kappa_preconditioned": condition_number(preconditioned_matrix),
    })
    return result
