"""CPU–QPU communication accounting (Figure 1 of the paper).

Algorithm 2 moves data between the classical host and the quantum device:

* once, at the beginning: the block-encoding circuit ``BE(A†)``, the phase
  vector ``Φ`` and the state-preparation circuit ``SP(b)``;
* at every solve: the state-preparation circuit of the current right-hand side
  (``SP(r_i)``) from CPU to QPU, and the sampled solution vector (``x_i``)
  from QPU to CPU.

:class:`CommunicationTrace` records those transfers with byte estimates so the
benchmarks can regenerate the communication timeline of Fig. 1 and quantify
how little data moves after the first solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TransferEvent", "CommunicationTrace"]

#: rough serialisation cost of one gate in a circuit description (bytes).
BYTES_PER_GATE = 16
#: bytes per floating-point scalar transferred (double precision).
BYTES_PER_SCALAR = 8


@dataclass(frozen=True)
class TransferEvent:
    """One CPU↔QPU transfer.

    Attributes
    ----------
    step:
        Algorithm step the transfer belongs to (0 = setup / first solve,
        ``i >= 1`` = refinement iteration ``i``).
    direction:
        ``"cpu->qpu"`` or ``"qpu->cpu"``.
    label:
        Short label used in the rendered timeline (``"BE(A†)"``, ``"SP(r_1)"``,
        ``"x_0"``, ...).
    payload_bytes:
        Estimated size of the transfer.
    description:
        Longer human-readable description.
    """

    step: int
    direction: str
    label: str
    payload_bytes: float
    description: str = ""


@dataclass
class CommunicationTrace:
    """Ordered list of CPU↔QPU transfers of one refined solve."""

    events: list[TransferEvent] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def add(self, step: int, direction: str, label: str, payload_bytes: float,
            description: str = "") -> None:
        """Append one transfer event."""
        if direction not in ("cpu->qpu", "qpu->cpu"):
            raise ValueError("direction must be 'cpu->qpu' or 'qpu->cpu'")
        self.events.append(TransferEvent(step=step, direction=direction, label=label,
                                         payload_bytes=float(payload_bytes),
                                         description=description))

    def add_circuit_upload(self, step: int, label: str, num_gates: int,
                           description: str = "") -> None:
        """Record the upload of a circuit description (size ∝ gate count)."""
        self.add(step, "cpu->qpu", label, num_gates * BYTES_PER_GATE, description)

    def add_vector_upload(self, step: int, label: str, length: int,
                          description: str = "") -> None:
        """Record the upload of a classical vector (e.g. the QSP phase list)."""
        self.add(step, "cpu->qpu", label, length * BYTES_PER_SCALAR, description)

    def add_solution_download(self, step: int, label: str, length: int,
                              description: str = "") -> None:
        """Record the download of a sampled solution vector of ``length`` entries."""
        self.add(step, "qpu->cpu", label, length * BYTES_PER_SCALAR, description)

    # ------------------------------------------------------------------ #
    def total_bytes(self, direction: str | None = None) -> float:
        """Total bytes transferred (optionally restricted to one direction)."""
        return float(sum(e.payload_bytes for e in self.events
                         if direction is None or e.direction == direction))

    def per_step_bytes(self) -> dict[int, float]:
        """Bytes transferred per algorithm step."""
        out: dict[int, float] = {}
        for event in self.events:
            out[event.step] = out.get(event.step, 0.0) + event.payload_bytes
        return out

    def setup_fraction(self) -> float:
        """Fraction of the total traffic that belongs to the setup/first solve.

        The paper's point (Sec. III-C3) is that this fraction is large: after
        the first solve only ``SP(r_i)`` uploads and ``x_i`` downloads remain.
        """
        total = self.total_bytes()
        if total == 0.0:
            return 0.0
        return self.per_step_bytes().get(0, 0.0) / total

    # ------------------------------------------------------------------ #
    def render(self, *, width: int = 72) -> str:
        """ASCII timeline in the spirit of Fig. 1 (CPU row, QPU row, arrows)."""
        lines = ["step | direction  | payload      | label",
                 "-" * min(width, 60)]
        for event in self.events:
            arrow = "CPU → QPU" if event.direction == "cpu->qpu" else "QPU → CPU"
            lines.append(f"{event.step:4d} | {arrow:10s} | {_format_bytes(event.payload_bytes):>12s} "
                         f"| {event.label}")
        lines.append("-" * min(width, 60))
        lines.append(f"total CPU→QPU: {_format_bytes(self.total_bytes('cpu->qpu'))}, "
                     f"QPU→CPU: {_format_bytes(self.total_bytes('qpu->cpu'))}, "
                     f"setup fraction: {100 * self.setup_fraction():.1f}%")
        return "\n".join(lines)


def _format_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} GiB"
