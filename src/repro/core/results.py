"""Result containers for single solves and refinement runs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SingleSolveRecord", "RefinementIteration", "RefinementResult"]


@dataclass
class SingleSolveRecord:
    """Outcome of one QSVT (or classical inner) solve ``A x ≈ rhs``.

    Attributes
    ----------
    x:
        The de-normalised solution estimate (``scale * direction``).
    direction:
        Unit-norm direction returned by the quantum read-out (``η`` of
        Remark 2 in the paper).
    scale:
        Scale ``μ`` recovered classically by the de-normalisation step.
    scaled_residual:
        ``||rhs - A x|| / ||rhs||`` of this solve.
    block_encoding_calls:
        Calls to the block-encoding (and its adjoint) consumed by the solve.
    polynomial_degree:
        Degree of the inverse polynomial used (0 for classical solvers).
    success_probability:
        Ancilla post-selection probability (1 for classical solvers).
    shots:
        Measurement shots consumed (0 when the read-out is exact).
    wall_time:
        Wall-clock seconds spent in the solve.
    degraded:
        ``True`` when the serving tier answered from its in-process
        classical fallback (no live worker could own the request); the
        answer is still exact, but bypassed the quantum pipeline and its
        caches.
    """

    x: np.ndarray
    direction: np.ndarray
    scale: float
    scaled_residual: float
    block_encoding_calls: int = 0
    polynomial_degree: int = 0
    success_probability: float = 1.0
    shots: int = 0
    wall_time: float = 0.0
    degraded: bool = False


@dataclass
class RefinementIteration:
    """State of the refinement after one iteration (one row of Fig. 3/4)."""

    #: iteration index (0 = the initial solve ``x_0``).
    index: int
    #: scaled residual ``ω_i = ||b - A x_i|| / ||b||``.
    scaled_residual: float
    #: theoretical bound ``(ε_l κ)^{i+1}`` from Theorem III.1.
    predicted_residual: float
    #: relative forward error ``||x - x_i|| / ||x||`` (NaN when the true
    #: solution is unknown).
    forward_error: float
    #: Euclidean norm of the correction added at this iteration.
    correction_norm: float
    #: cumulative number of block-encoding calls after this iteration.
    cumulative_block_encoding_calls: int
    #: wall-clock seconds spent on this iteration (QPU solve + CPU update).
    wall_time: float


@dataclass
class RefinementResult:
    """Full record of a mixed-precision iterative-refinement run (Algorithm 2)."""

    #: final solution estimate.
    x: np.ndarray
    #: whether the target accuracy was reached.
    converged: bool
    #: number of refinement iterations performed (excluding the initial solve).
    iterations: int
    #: target accuracy ``ε`` on the scaled residual.
    target_accuracy: float
    #: per-iteration records (``history[0]`` is the initial solve).
    history: list[RefinementIteration] = field(default_factory=list)
    #: iteration bound of Theorem III.1 (NaN when ``ε_l κ >= 1``).
    iteration_bound: float = float("nan")
    #: accuracy of the inner solver used for the bound (measured or nominal).
    epsilon_l: float = float("nan")
    #: condition number used in the analysis.
    kappa: float = float("nan")
    #: total block-encoding calls over the whole run.
    total_block_encoding_calls: int = 0
    #: CPU–QPU communication trace (None when tracking was disabled).
    communication: object | None = None
    #: free-form information from the inner solver (backend name, degree, ...).
    solver_info: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def scaled_residuals(self) -> np.ndarray:
        """Scaled residual after each iteration (including the initial solve)."""
        return np.array([record.scaled_residual for record in self.history])

    @property
    def forward_errors(self) -> np.ndarray:
        """Relative forward error after each iteration (NaN when unknown)."""
        return np.array([record.forward_error for record in self.history])

    @property
    def predicted_residuals(self) -> np.ndarray:
        """Theorem III.1 prediction ``(ε_l κ)^{i+1}`` for each iteration."""
        return np.array([record.predicted_residual for record in self.history])

    def summary(self) -> str:
        """Multi-line human-readable convergence table."""
        lines = [
            f"iterations        : {self.iterations} (bound {self.iteration_bound})",
            f"converged         : {self.converged} (target {self.target_accuracy:.2e})",
            f"BE calls          : {self.total_block_encoding_calls}",
            " iter |   scaled residual |   bound (Thm III.1) | forward error",
        ]
        for record in self.history:
            lines.append(
                f"  {record.index:3d} | {record.scaled_residual:17.6e} | "
                f"{record.predicted_residual:19.6e} | {record.forward_error:13.6e}")
        return "\n".join(lines)
