"""QPU backends for the QSVT linear solver.

A backend owns everything that the paper's Sec. III-A calls "quantum circuit
synthesis": given the matrix ``A`` and the requested inner accuracy ``ε_l`` it
prepares (once) the block-encoding of ``A†``, the inverse polynomial and —
for the circuit backend — the QSP phase factors, and it then answers repeated
``apply_inverse(rhs)`` requests, which is exactly the pattern of Algorithm 2
(the compiled routines are reused across refinement iterations, only the
right-hand side changes).

Three backends are provided:

* :class:`CircuitQSVTBackend` — the full pipeline: block-encoding circuit,
  tree state preparation, QSVT alternating phase modulation, ancilla
  post-selection, read-out.  This is the faithful (and most expensive)
  simulation; it is practical for the small systems and moderate polynomial
  degrees of the paper's Sec. IV (``N = 16``, ``κ ≲ 30``).
* :class:`IdealPolynomialBackend` — applies the *same* Eq.-(4) polynomial to
  the singular values directly (Clenshaw evaluation on the SVD).  This is the
  noiseless limit of the circuit backend (they agree to ~1e-12, see the
  integration tests) and is what the large-κ experiments of Fig. 4/5 use,
  mirroring the paper's own reliance on extrapolation where simulation becomes
  intractable.
* :class:`ExactInverseBackend` — returns the exact solution direction
  perturbed by a controlled relative error ``ε_l``; a surrogate used by the
  convergence-theory tests (it realises the hypothesis of Theorem III.1
  exactly).
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass, field

import numpy as np

from ..blockencoding import build_block_encoding
from ..exceptions import BackendError
from ..qsp import build_inverse_polynomial, solve_qsp_phases
from ..qsp.inverse_polynomial import (
    InversePolynomial,
    polynomial_error_from_solution_accuracy,
)
from ..qsp.qsvt_circuit import QSVTProgram, compile_qsvt_program
from ..qsp.chebyshev import evaluate_chebyshev, evaluate_chebyshev_operator
from ..quantum.plan import ExecutionPlan, PlanOp
from ..utils import (
    as_generator,
    as_vector,
    check_square,
    is_power_of_two,
    matrix_fingerprint,
    payload_nbytes,
)
from .sampling import SamplingModel

__all__ = [
    "BackendApplication",
    "QSVTBackend",
    "CircuitQSVTBackend",
    "IdealPolynomialBackend",
    "ExactInverseBackend",
    "make_backend",
]


@dataclass(frozen=True)
class BackendApplication:
    """Raw outcome of one backend ``apply_inverse`` call.

    Attributes
    ----------
    direction:
        Unit-norm estimate of the solution direction ``η``.
    block_encoding_calls:
        Block-encoding (and adjoint) calls consumed by the request.
    polynomial_degree:
        Degree of the inverse polynomial used.
    success_probability:
        Ancilla post-selection probability (1.0 for the ideal backends).
    shots:
        Measurement samples consumed by the read-out (0 if exact).
    """

    direction: np.ndarray
    block_encoding_calls: int
    polynomial_degree: int
    success_probability: float = 1.0
    shots: int = 0


class QSVTBackend(abc.ABC):
    """Interface shared by every backend.

    Besides the abstract ``prepare`` / ``apply_inverse`` pair, the base class
    provides two concrete services shared by all implementations:

    * **synthesis fingerprinting** — ``prepare`` implementations call
      :meth:`_record_synthesis` so that :meth:`is_stale` can later detect a
      matrix that was mutated *in place* after synthesis (same object, new
      bytes).  :class:`repro.core.qsvt_solver.QSVTLinearSolver` turns that
      check into an explicit error + ``recompile()`` path, and
      :class:`repro.engine.cache.CompiledSolverCache` keys its entries on the
      same fingerprint, so the two invalidation mechanisms agree by
      construction.
    * **batched application** — :meth:`apply_inverse_batch` answers ``B``
      right-hand sides against the *same* compiled synthesis.  The default is
      a loop; backends that can amortise the sweep (the circuit backend via
      :func:`repro.qsp.qsvt_circuit.apply_qsvt_to_vectors`, the ideal backend
      via one dense contraction) override it.
    """

    #: human-readable backend name (used in reports).
    name: str = "backend"

    #: fingerprint of the matrix the current synthesis was compiled for
    #: (``None`` before the first ``prepare``).
    synthesis_fingerprint: str | None = None

    @abc.abstractmethod
    def prepare(self, matrix, *, epsilon_l: float, kappa: float | None = None) -> None:
        """One-off "circuit synthesis" for the given matrix and inner accuracy.

        Implementations should finish with ``self._record_synthesis(matrix)``
        so that :meth:`is_stale` works for direct backend use;
        :class:`~repro.core.qsvt_solver.QSVTLinearSolver` additionally records
        the fingerprint itself after calling ``prepare``, so subclasses that
        forget still work through the solver."""

    @abc.abstractmethod
    def apply_inverse(self, rhs) -> BackendApplication:
        """Return an estimate of the direction of ``A^{-1} rhs``."""

    # ------------------------------------------------------------------ #
    def apply_inverse_batch(self, rhs_batch) -> list[BackendApplication]:
        """Apply the compiled inverse to a stack of right-hand sides.

        ``rhs_batch`` is array-like of shape ``(B, N)``; one
        :class:`BackendApplication` is returned per row.  The base
        implementation loops over :meth:`apply_inverse`; subclasses override
        it when they can share work across the batch.
        """
        batch = np.atleast_2d(np.asarray(rhs_batch, dtype=float))
        return [self.apply_inverse(batch[i]) for i in range(batch.shape[0])]

    # ------------------------------------------------------------------ #
    def _record_synthesis(self, matrix) -> None:
        """Remember which matrix bytes the synthesis was compiled against."""
        self.synthesis_fingerprint = matrix_fingerprint(matrix)

    def payload_bytes(self) -> int:
        """Bytes of compiled artefacts this backend keeps alive.

        Used by :class:`repro.engine.cache.CompiledSolverCache` for
        byte-accounted eviction.  The base implementation counts the stored
        matrix — ``nnz_bytes()`` for structured operators, ``nbytes`` for
        dense arrays, so banded entries are no longer charged the dense
        ``N²·8`` — and backends with heavier compiled state (execution
        plans, SVD factors, phase vectors) extend it.
        """
        matrix = getattr(self, "matrix", None)
        return payload_nbytes(matrix) if matrix is not None else 0

    def is_stale(self, matrix) -> bool:
        """True when ``matrix`` no longer matches the compiled synthesis.

        Always true before the first ``prepare``.  The check hashes the matrix
        bytes (microseconds at paper scale), so callers can afford it on every
        solve.
        """
        if self.synthesis_fingerprint is None:
            return True
        return matrix_fingerprint(matrix) != self.synthesis_fingerprint

    # ------------------------------------------------------------------ #
    # compiled-payload export / import (persistent synthesis store)
    # ------------------------------------------------------------------ #
    def export_payload(self) -> dict:
        """Serialisable snapshot of the compiled synthesis.

        Returns ``{"meta": <JSON-able dict>, "arrays": {name: ndarray}}`` —
        everything a fresh backend instance needs to answer ``apply_inverse``
        without re-running block-encoding / polynomial / phase synthesis.
        :class:`repro.engine.store.SynthesisStore` spills this to disk keyed
        by matrix fingerprint; backends whose synthesis is not worth
        persisting (e.g. the exact-inverse surrogate) leave the default,
        which raises :class:`NotImplementedError` so the store simply skips
        them.
        """
        raise NotImplementedError(
            f"backend {self.name!r} does not support compiled-payload export")

    def import_payload(self, payload: dict) -> None:
        """Restore the compiled synthesis from :meth:`export_payload` output.

        Called on a *freshly constructed* backend; after it returns, the
        backend behaves exactly as if ``prepare`` had run against the stored
        matrix (including the synthesis fingerprint).
        """
        raise NotImplementedError(
            f"backend {self.name!r} does not support compiled-payload import")

    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        """Backend metadata recorded in solver results."""
        return {"backend": self.name}


def _effective_kappa(sigma: np.ndarray, alpha: float, kappa: float | None,
                     margin: float) -> float:
    """Condition number seen by the polynomial: ``α / σ_min`` (with a margin)."""
    sigma_min = float(sigma.min())
    if sigma_min <= 0.0:
        raise BackendError("matrix is numerically singular")
    if kappa is not None:
        sigma_min = min(sigma_min, float(sigma.max()) / float(kappa))
    return margin * alpha / sigma_min


def _matrix_free_spectrum(operator, kappa: float | None, *, margin: float,
                          subnormalization_margin: float) -> tuple[float, float]:
    """``(alpha, kappa_eff)`` for the matrix-free route — never densifies.

    The dense path reads ``σ_max`` / ``σ_min`` off the SVD; the matrix-free
    path sources them, in order of preference:

    * the operator's **exact** extreme-eigenvalue bounds (symmetric
      operators: ``σ = |λ|``; definite spectra attain ``min |λ|`` at an
      endpoint), or an explicitly pinned ``kappa``;
    * reorthogonalised **Lanczos** Ritz values for symmetric spectra the
      bounds cannot resolve — the indefinite shifted-Helmholtz case, where
      ``min |λ|`` sits *inside* the spectrum and no analytic κ is needed
      any more;
    * **Golub–Kahan** singular-value estimates for non-symmetric operators
      (convection–diffusion), which the backend inverts through the
      symmetric dilation ``[[0, A], [Aᵀ, 0]]``.

    All estimates are safety-widened (κ over-estimated) and use a fixed
    seed, so a re-``prepare`` of the same operator is bit-reproducible.
    """
    from ..linalg.cond import estimate_singular_bounds, lanczos_spectrum_estimate
    from ..linalg.operators import is_structured_operator

    if not is_structured_operator(operator):
        raise BackendError(
            "the matrix-free route requires a structured operator")
    n = operator.shape[0]
    sigma_min: float | None = None
    if operator.is_symmetric:
        bounds = operator.eigenvalue_bounds()
        if bounds is not None:
            lo, hi = bounds
            sigma_max = max(abs(lo), abs(hi))
            if lo * hi > 0:
                sigma_min = min(abs(lo), abs(hi))
        if bounds is None or (sigma_min is None and kappa is None):
            lo_e, hi_e, interior = lanczos_spectrum_estimate(
                operator.matvec, n, rng=0)
            if bounds is None:
                sigma_max = max(abs(lo_e), abs(hi_e))
            if sigma_min is None and interior > 0.0:
                sigma_min = interior
    else:
        smin, smax = estimate_singular_bounds(operator.matvec,
                                              operator.rmatvec, n, rng=0)
        sigma_max = smax
        if smin > 0.0:
            sigma_min = smin
    if sigma_max <= 0.0:
        raise BackendError("matrix is numerically singular")
    alpha = subnormalization_margin * sigma_max
    if kappa is not None:
        cap = sigma_max / float(kappa)
        sigma_min = cap if sigma_min is None else min(sigma_min, cap)
    if sigma_min is None or sigma_min <= 0.0:
        raise BackendError(
            "could not resolve min |λ| for the matrix-free route: the "
            "spectral estimate collapsed to zero — pass kappa= explicitly")
    return alpha, margin * alpha / sigma_min


def _calibrated_polynomial(kappa_eff: float, epsilon_l: float, *, max_norm: float | None,
                           calibrate: bool, error_convention: str) -> InversePolynomial:
    """Build the Eq.-(4) polynomial whose *achieved* accuracy matches ``ε_l``.

    The analytic parameters ``b(ε', κ)`` and ``D(ε', κ)`` are conservative; when
    ``calibrate`` is on, the construction error ``ε'`` is increased by bisection
    until the measured relative inverse error lands within ``[ε_l/4, ε_l]``, so
    that the contraction factor of the refinement matches the nominal ``ε_l``
    (this is what makes the Theorem III.1 bound the sharp estimate observed in
    Fig. 3 of the paper).
    """
    base_error = polynomial_error_from_solution_accuracy(epsilon_l, kappa_eff,
                                                         error_convention)
    poly = build_inverse_polynomial(kappa_eff, base_error, max_norm=max_norm)
    if not calibrate:
        return poly
    achieved = poly.relative_inverse_error()
    if achieved >= epsilon_l / 4.0:
        return poly
    # increase the construction error until the achieved accuracy is close to
    # (but not above) the requested one; the loop is logarithmic in the gap.
    low, high = base_error, 0.5
    best = poly
    for _ in range(40):
        mid = np.sqrt(low * high)
        candidate = build_inverse_polynomial(kappa_eff, mid, max_norm=max_norm)
        achieved = candidate.relative_inverse_error()
        if achieved > epsilon_l:
            high = mid
        else:
            best = candidate
            low = mid
            if achieved >= epsilon_l / 4.0:
                break
        if high / low < 1.05:
            break
    return best


# ---------------------------------------------------------------------- #
# payload (de)serialisation helpers
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class _RestoredBlockEncoding:
    """Summary of a block-encoding restored from a stored payload.

    The compiled :class:`~repro.qsp.qsvt_circuit.QSVTProgram` already contains
    the block-encoding unitary inside its fused plans, so a restored backend
    only needs the *metadata* of the original construction (``alpha`` for
    reports, register sizes for sanity checks) — rebuilding the circuit-level
    object would repeat exactly the synthesis the store exists to skip.
    """

    alpha: float
    num_ancillas: int
    num_data_qubits: int
    name: str

    @property
    def num_qubits(self) -> int:
        return self.num_ancillas + self.num_data_qubits

    @property
    def dimension(self) -> int:
        return 2**self.num_data_qubits


def _polynomial_meta(poly: InversePolynomial) -> dict:
    return {
        "kappa": float(poly.kappa),
        "target_error": float(poly.target_error),
        "b_parameter": int(poly.b_parameter),
        "inverse_scale": float(poly.inverse_scale),
        "max_norm": None if poly.max_norm is None else float(poly.max_norm),
        "max_abs": float(poly._max_abs),
    }


def _polynomial_from_meta(meta: dict, coefficients: np.ndarray) -> InversePolynomial:
    return InversePolynomial(
        coefficients=np.asarray(coefficients, dtype=float),
        kappa=float(meta["kappa"]),
        target_error=float(meta["target_error"]),
        b_parameter=int(meta["b_parameter"]),
        inverse_scale=float(meta["inverse_scale"]),
        max_norm=None if meta["max_norm"] is None else float(meta["max_norm"]),
        _max_abs=float(meta["max_abs"]),
    )


def _export_program(program: QSVTProgram, arrays: dict) -> dict:
    """Flatten a compiled program into JSON-able metadata + named arrays."""
    plans_meta = []
    for p, plan in enumerate(program.plans):
        ops_meta = []
        for i, op in enumerate(plan.ops):
            if op.matrix is not None:
                arrays[f"plan{p}_op{i}_matrix"] = np.asarray(op.matrix)
            if op.diagonal is not None:
                arrays[f"plan{p}_op{i}_diagonal"] = np.asarray(op.diagonal)
            ops_meta.append({
                "kind": op.kind,
                "qubits": list(op.qubits),
                "controls": list(op.controls),
                "control_states": list(op.control_states),
                "shift": int(op.shift),
                "source_gates": int(op.source_gates),
            })
        plans_meta.append({
            "num_qubits": int(plan.num_qubits),
            "source_gate_count": int(plan.source_gate_count),
            "fusion": plan.fusion,
            "max_fused_qubits": int(plan.max_fused_qubits),
            "ops": ops_meta,
        })
    arrays["global_phases"] = np.asarray(program.global_phases, dtype=complex)
    return {
        "num_qubits": int(program.num_qubits),
        "num_ancillas": int(program.num_ancillas),
        "dimension": int(program.dimension),
        "block_encoding_calls_per_run": int(program.block_encoding_calls_per_run),
        "circuit_depth": int(program.circuit_depth),
        "plans": plans_meta,
    }


def _import_program(meta: dict, arrays: dict) -> QSVTProgram:
    plans = []
    for p, plan_meta in enumerate(meta["plans"]):
        ops = []
        for i, op_meta in enumerate(plan_meta["ops"]):
            matrix = arrays.get(f"plan{p}_op{i}_matrix")
            diagonal = arrays.get(f"plan{p}_op{i}_diagonal")
            ops.append(PlanOp(
                kind=str(op_meta["kind"]),
                qubits=tuple(int(q) for q in op_meta["qubits"]),
                matrix=None if matrix is None else np.asarray(matrix, dtype=complex),
                diagonal=(None if diagonal is None
                          else np.asarray(diagonal, dtype=complex)),
                controls=tuple(int(q) for q in op_meta["controls"]),
                control_states=tuple(int(s) for s in op_meta["control_states"]),
                shift=int(op_meta.get("shift", 0)),
                source_gates=int(op_meta["source_gates"]),
            ))
        plans.append(ExecutionPlan(
            int(plan_meta["num_qubits"]), ops,
            source_gate_count=int(plan_meta["source_gate_count"]),
            fusion=str(plan_meta["fusion"]),
            max_fused_qubits=int(plan_meta["max_fused_qubits"])))
    return QSVTProgram(
        num_qubits=int(meta["num_qubits"]),
        num_ancillas=int(meta["num_ancillas"]),
        dimension=int(meta["dimension"]),
        plans=plans,
        global_phases=[complex(p) for p in np.asarray(arrays["global_phases"])],
        block_encoding_calls_per_run=int(meta["block_encoding_calls_per_run"]),
        circuit_depth=int(meta["circuit_depth"]))


# ---------------------------------------------------------------------- #
# circuit-level backend
# ---------------------------------------------------------------------- #
class CircuitQSVTBackend(QSVTBackend):
    """Faithful circuit-level QSVT backend.

    Parameters
    ----------
    block_encoding:
        Block-encoding construction name (``"dilation"``, ``"lcu"``,
        ``"fable"``, ``"tridiagonal"``).  ``None`` (default) resolves at
        ``prepare`` time: dense matrices use ``"dilation"``; structured
        tridiagonal-Toeplitz operators (the Eq.-(7) Poisson shape) use the
        ``"tridiagonal"`` construction of :mod:`repro.blockencoding.banded`
        — the structured-operator layer's natural circuit partner.
    dense_block_encoding:
        Insert the block-encoding as one dense gate (fast simulation, default)
        or inline its gate-level circuit.
    max_polynomial_norm:
        Sup-norm the inverse polynomial is rescaled to before phase solving.
    calibrate_polynomial:
        Tune the polynomial so its *achieved* accuracy matches ``ε_l`` (see
        :func:`_calibrated_polynomial`).
    phase_tolerance:
        Convergence tolerance of the QSP phase-factor solver.
    sampling:
        Read-out model applied to the solution direction.
    kappa_margin:
        Safety factor applied to the effective condition number.
    error_convention:
        Mapping from ``ε_l`` to the polynomial construction error
        (``"conservative"`` = ``ε_l/(2κ)``, the paper's choice).
    fusion:
        Gate-fusion mode of the compiled execution plans (``"greedy"``
        default, ``"none"`` for the per-gate reference path) — see
        :mod:`repro.quantum.plan`.
    max_fused_qubits:
        Width cap of fused dense unitaries in the compiled plans.
    """

    name = "circuit-qsvt"

    #: dimension above which a structured operator refuses to densify into
    #: the circuit simulation (the dense statevector is the cost, not the
    #: matrix — use the ideal backend's matrix-free route instead).
    _DENSIFY_LIMIT = 4096

    def __init__(self, *, block_encoding: str | None = None,
                 dense_block_encoding: bool = True,
                 max_polynomial_norm: float = 0.9,
                 calibrate_polynomial: bool = True,
                 phase_tolerance: float = 1e-12,
                 sampling: SamplingModel | None = None,
                 kappa_margin: float = 1.05,
                 error_convention: str = "conservative",
                 fusion: str | None = None,
                 max_fused_qubits: int | None = None) -> None:
        self.block_encoding_method = block_encoding
        self.dense_block_encoding = bool(dense_block_encoding)
        self.max_polynomial_norm = float(max_polynomial_norm)
        self.calibrate_polynomial = bool(calibrate_polynomial)
        self.phase_tolerance = float(phase_tolerance)
        self.sampling = sampling if sampling is not None else SamplingModel()
        self.kappa_margin = float(kappa_margin)
        self.error_convention = error_convention
        self.fusion = fusion
        self.max_fused_qubits = max_fused_qubits
        self._prepared = False

    # ------------------------------------------------------------------ #
    def prepare(self, matrix, *, epsilon_l: float, kappa: float | None = None) -> None:
        from ..linalg.operators import is_structured_operator

        method = self.block_encoding_method
        if is_structured_operator(matrix):
            stencil = getattr(matrix, "toeplitz_stencil", lambda: None)()
            banded_shape = (is_power_of_two(matrix.dimension)
                            and stencil is not None
                            and set(stencil) == {-1, 0, 1}
                            and stencil[1] == stencil[-1])
            # symmetric tridiagonal Toeplitz operators (the Eq.-(7) Poisson
            # shape) run through the plan-op banded encoding: O(2^q) per
            # block-encoding call, zero dense matrices, no densification
            # wall.  An *explicit* dense construction name keeps the legacy
            # densify-and-simulate path (the reference the plan-op route is
            # tested against).
            if banded_shape and method in (None, "banded-plan"):
                self._prepare_banded_plan(matrix, epsilon_l, kappa)
                return
            if method == "banded-plan":
                raise BackendError(
                    "the banded-plan block-encoding needs a symmetric "
                    "power-of-two tridiagonal Toeplitz operator")
            # other structured shapes densify here (small N only): the
            # circuit simulation is dense in the *statevector* anyway.
            if matrix.dimension > self._DENSIFY_LIMIT:
                raise BackendError(
                    f"circuit backend cannot simulate N={matrix.dimension} "
                    "with a dense block-encoding; use the ideal backend's "
                    "matrix-free route")
            matrix = matrix.to_dense()
        if method is None:
            method = "dilation"
        # record the resolution without clobbering the constructor's None
        # sentinel: a reused backend instance must re-resolve per matrix.
        self.resolved_block_encoding = method
        mat = check_square(np.asarray(matrix, dtype=float), name="A")
        self.matrix = mat
        sigma = np.linalg.svd(mat, compute_uv=False)
        # the QSVT inverts A through a block-encoding of A† (Sec. II-A4)
        self.block = build_block_encoding(mat.conj().T, method)
        self.kappa_effective = _effective_kappa(sigma, self.block.alpha, kappa,
                                                self.kappa_margin)
        self.polynomial = _calibrated_polynomial(
            self.kappa_effective, epsilon_l, max_norm=self.max_polynomial_norm,
            calibrate=self.calibrate_polynomial, error_convention=self.error_convention)
        phase_result = solve_qsp_phases(self.polynomial.coefficients,
                                        tolerance=self.phase_tolerance,
                                        raise_on_failure=False)
        if not phase_result.converged and phase_result.residual > 1e-8:
            raise BackendError(
                f"QSP phase factors did not converge (residual {phase_result.residual:.2e}); "
                "use the 'ideal' backend for this configuration")
        self.phases = phase_result.phases
        self.phase_residual = phase_result.residual
        self.epsilon_l = float(epsilon_l)
        # compile the QSVT circuits into fused execution plans once; every
        # apply_inverse / apply_inverse_batch call replays them.
        self.program = compile_qsvt_program(
            self.block, self.phases, real_part=True,
            dense_block_encoding=self.dense_block_encoding,
            fusion=self.fusion, max_fused_qubits=self.max_fused_qubits)
        self._record_synthesis(mat)
        self._prepared = True

    def _prepare_banded_plan(self, operator, epsilon_l: float,
                             kappa: float | None) -> None:
        """Matrix-free circuit synthesis for tridiagonal Toeplitz operators.

        Swaps the dense ``SVD → dense block-encoding → gate circuit``
        pipeline for exact closed-form spectra and the plan-op circulant
        embedding of :class:`~repro.blockencoding.banded.BandedPlanBlockEncoding`
        — nothing in the synthesis or in later ``apply_inverse`` calls ever
        materialises an ``N x N`` array, so the ``_DENSIFY_LIMIT`` wall does
        not apply to this route.
        """
        from ..blockencoding.banded import (BandedPlanBlockEncoding,
                                            compile_banded_qsvt_program)
        from ..linalg.cond import lanczos_spectrum_estimate

        stencil = operator.toeplitz_stencil()
        self.resolved_block_encoding = "banded-plan"
        # A† = A for the real symmetric stencil, so the encoding targets the
        # operator itself — same convention as build_block_encoding(A†).
        self.block = BandedPlanBlockEncoding(
            int(operator.dimension).bit_length() - 1,
            diagonal=float(stencil.get(0, 0.0)), off_diagonal=float(stencil[1]))
        bounds = operator.eigenvalue_bounds()
        sigma_min = None
        sigma_max = self.block.alpha
        if bounds is not None:
            lo, hi = bounds
            sigma_max = max(abs(lo), abs(hi))
            if lo * hi > 0:
                sigma_min = min(abs(lo), abs(hi))
        if sigma_min is None and kappa is None:
            _, _, interior = lanczos_spectrum_estimate(
                operator.matvec, operator.shape[0], rng=0)
            sigma_min = interior if interior > 0.0 else None
        if kappa is not None:
            cap = sigma_max / float(kappa)
            sigma_min = cap if sigma_min is None else min(sigma_min, cap)
        if sigma_min is None or sigma_min <= 0.0:
            raise BackendError("matrix is numerically singular")
        self.kappa_effective = self.kappa_margin * self.block.alpha / sigma_min
        self.polynomial = _calibrated_polynomial(
            self.kappa_effective, epsilon_l, max_norm=self.max_polynomial_norm,
            calibrate=self.calibrate_polynomial,
            error_convention=self.error_convention)
        phase_result = solve_qsp_phases(self.polynomial.coefficients,
                                        tolerance=self.phase_tolerance,
                                        raise_on_failure=False)
        if not phase_result.converged and phase_result.residual > 1e-8:
            raise BackendError(
                f"QSP phase factors did not converge (residual "
                f"{phase_result.residual:.2e}); use the 'ideal' backend for "
                "this configuration")
        self.phases = phase_result.phases
        self.phase_residual = phase_result.residual
        self.epsilon_l = float(epsilon_l)
        self.matrix = operator
        self.program = compile_banded_qsvt_program(self.block, self.phases,
                                                   real_part=True)
        self._record_synthesis(operator)
        self._prepared = True

    def apply_inverse(self, rhs) -> BackendApplication:
        if not self._prepared:
            raise BackendError("call prepare() before apply_inverse()")
        vector = as_vector(rhs, name="rhs").astype(float)
        application = self.program.apply(vector)
        raw = np.real(application.vector)
        norm = np.linalg.norm(raw)
        if norm == 0.0:
            raise BackendError("QSVT produced a zero post-selected state")
        direction = self.sampling.read_out(raw / norm)
        return BackendApplication(
            direction=direction,
            block_encoding_calls=application.block_encoding_calls,
            polynomial_degree=self.polynomial.degree,
            success_probability=application.success_probability,
            shots=self.sampling.shots_used(),
        )

    def apply_inverse_batch(self, rhs_batch) -> list[BackendApplication]:
        """Batched inverse: one plan sweep for all ``B`` right-hand sides.

        The whole batch replays the compiled
        :class:`~repro.qsp.qsvt_circuit.QSVTProgram`, so every fused
        contraction updates all ``B`` states at once — the per-state cost
        collapses to roughly ``1/B`` of a looped :meth:`apply_inverse` at
        paper scale.
        """
        if not self._prepared:
            raise BackendError("call prepare() before apply_inverse_batch()")
        batch = np.atleast_2d(np.asarray(rhs_batch, dtype=float))
        application = self.program.apply_batch(batch)
        results = []
        for raw, prob in zip(np.real(application.vectors),
                             application.success_probabilities):
            norm = np.linalg.norm(raw)
            if norm == 0.0:
                raise BackendError("QSVT produced a zero post-selected state")
            direction = self.sampling.read_out(raw / norm)
            results.append(BackendApplication(
                direction=direction,
                block_encoding_calls=application.block_encoding_calls,
                polynomial_degree=self.polynomial.degree,
                success_probability=float(prob),
                shots=self.sampling.shots_used(),
            ))
        return results

    def payload_bytes(self) -> int:
        total = super().payload_bytes()
        if self._prepared:
            total += self.program.payload_bytes()
            total += int(np.asarray(self.phases).nbytes)
        return total

    def export_payload(self) -> dict:
        from ..linalg.operators import is_structured_operator, operator_state_payload

        if not self._prepared:
            raise BackendError("call prepare() before export_payload()")
        arrays = {
            "phases": np.asarray(self.phases, dtype=float),
            "poly_coefficients": np.asarray(self.polynomial.coefficients,
                                            dtype=float),
        }
        meta = {
            "backend": self.name,
            "epsilon_l": float(self.epsilon_l),
            "kappa_effective": float(self.kappa_effective),
            "phase_residual": float(self.phase_residual),
            "block_encoding_method": self.resolved_block_encoding,
            "block": {
                "alpha": float(self.block.alpha),
                "num_ancillas": int(self.block.num_ancillas),
                "num_data_qubits": int(self.block.num_data_qubits),
                "name": str(self.block.name),
            },
            "polynomial": _polynomial_meta(self.polynomial),
            "program": _export_program(self.program, arrays),
        }
        if is_structured_operator(self.matrix):
            # the banded-plan route keeps the structured operator itself —
            # persist its versioned state instead of a dense matrix.
            op_meta, op_arrays = operator_state_payload(self.matrix)
            meta["operator_state"] = op_meta
            arrays.update(op_arrays)
        else:
            arrays["matrix"] = self.matrix
        return {"meta": meta, "arrays": arrays}

    def import_payload(self, payload: dict) -> None:
        from ..linalg.operators import operator_from_payload

        meta, arrays = payload["meta"], payload["arrays"]
        if meta.get("backend") != self.name:
            raise BackendError(
                f"payload was exported by backend {meta.get('backend')!r}, "
                f"not {self.name!r}")
        if "operator_state" in meta:
            self.matrix = mat = operator_from_payload(meta["operator_state"],
                                                      arrays)
        else:
            mat = check_square(np.asarray(arrays["matrix"], dtype=float),
                               name="A")
            self.matrix = mat
        self.resolved_block_encoding = str(meta["block_encoding_method"])
        self.block = _RestoredBlockEncoding(**meta["block"])
        self.kappa_effective = float(meta["kappa_effective"])
        self.polynomial = _polynomial_from_meta(meta["polynomial"],
                                                arrays["poly_coefficients"])
        self.phases = np.asarray(arrays["phases"], dtype=float)
        self.phase_residual = float(meta["phase_residual"])
        self.epsilon_l = float(meta["epsilon_l"])
        self.program = _import_program(meta["program"], arrays)
        self._record_synthesis(mat)
        self._prepared = True

    def describe(self) -> dict:
        info = {"backend": self.name,
                "block_encoding": getattr(self, "resolved_block_encoding",
                                          self.block_encoding_method or "auto"),
                "sampling": self.sampling.mode}
        if self._prepared:
            info.update({
                "polynomial_degree": self.polynomial.degree,
                "kappa_effective": self.kappa_effective,
                "achieved_epsilon_l": self.polynomial.relative_inverse_error(),
                "phase_residual": self.phase_residual,
                "block_encoding_alpha": self.block.alpha,
                "fusion": self.program.plans[0].fusion,
                "contractions_per_sweep": self.program.contractions_per_sweep,
                "gates_per_sweep": self.program.source_gates_per_sweep,
            })
        return info


# ---------------------------------------------------------------------- #
# ideal polynomial backend
# ---------------------------------------------------------------------- #
class IdealPolynomialBackend(QSVTBackend):
    """Noiseless singular-value transformation by the Eq.-(4) polynomial.

    Equivalent to the circuit backend with exact phase factors and exact
    read-out, but evaluated directly on the SVD of the sub-normalised matrix,
    so arbitrarily large polynomial degrees (``κ`` of a few hundred, Fig. 4)
    remain tractable.

    **Matrix-free route.**  Handed a
    :class:`~repro.linalg.operators.StructuredOperator`, ``prepare`` skips
    the ``O(N³)`` SVD entirely: the subnormalisation ``α`` and the effective
    ``κ`` come from the operator's *exact* extreme-eigenvalue bounds when it
    has them, and otherwise from matrix-free spectral estimates (Lanczos
    Ritz values for symmetric — including indefinite — spectra, Golub–Kahan
    singular-value bounds for non-symmetric ones).  ``apply_inverse``
    evaluates the very same Eq.-(4) Chebyshev polynomial through a Clenshaw
    recurrence over ``matvec`` calls — ``degree × O(nnz)`` work and
    ``O(nnz)`` memory.  For a symmetric matrix the two routes compute the
    same transformation (``V P(Σ/α) W† = P(A/α)`` because the polynomial is
    odd); non-symmetric operators run the dilation ``[[0, A], [Aᵀ, 0]]``,
    whose odd-polynomial action reproduces the dense SVD route exactly (see
    :meth:`_transform_matrix_free`).  The dense fallback is preserved
    bit-for-bit: ndarray inputs take the exact pre-existing SVD code path.
    """

    name = "ideal-polynomial"

    def __init__(self, *, calibrate_polynomial: bool = True,
                 sampling: SamplingModel | None = None,
                 kappa_margin: float = 1.05,
                 subnormalization_margin: float = 1.0,
                 error_convention: str = "conservative") -> None:
        self.calibrate_polynomial = bool(calibrate_polynomial)
        self.sampling = sampling if sampling is not None else SamplingModel()
        self.kappa_margin = float(kappa_margin)
        self.subnormalization_margin = float(subnormalization_margin)
        self.error_convention = error_convention
        self._matrix_free = False
        self._prepared = False

    def prepare(self, matrix, *, epsilon_l: float, kappa: float | None = None) -> None:
        from ..linalg.operators import is_structured_operator

        if is_structured_operator(matrix):
            self._prepare_matrix_free(matrix, epsilon_l, kappa)
            return
        self._matrix_free = False
        mat = check_square(np.asarray(matrix, dtype=float), name="A")
        self.matrix = mat
        # SVD of A† = V Σ W†; the QSVT of A† produces V P(Σ/α) W†
        v, sigma, wh = np.linalg.svd(mat.conj().T)
        self._v = v
        self._sigma = sigma
        self._wh = wh
        self.alpha = self.subnormalization_margin * float(sigma.max())
        self.kappa_effective = _effective_kappa(sigma, self.alpha, kappa, self.kappa_margin)
        self.polynomial = _calibrated_polynomial(
            self.kappa_effective, epsilon_l, max_norm=None,
            calibrate=self.calibrate_polynomial, error_convention=self.error_convention)
        self.epsilon_l = float(epsilon_l)
        self._record_synthesis(mat)
        self._prepared = True

    def _prepare_matrix_free(self, operator, epsilon_l: float,
                             kappa: float | None) -> None:
        """Synthesis without the SVD: exact or estimated bounds size the polynomial."""
        self.alpha, self.kappa_effective = _matrix_free_spectrum(
            operator, kappa, margin=self.kappa_margin,
            subnormalization_margin=self.subnormalization_margin)
        self.polynomial = _calibrated_polynomial(
            self.kappa_effective, epsilon_l, max_norm=None,
            calibrate=self.calibrate_polynomial,
            error_convention=self.error_convention)
        self.matrix = operator
        self._v = self._sigma = self._wh = None
        self._matrix_free = True
        self._dilated = not operator.is_symmetric
        self.epsilon_l = float(epsilon_l)
        self._record_synthesis(operator)
        self._prepared = True

    # ------------------------------------------------------------------ #
    def _transform_matrix_free(self, normalized: np.ndarray) -> np.ndarray:
        """``P(A/α)`` applied by Clenshaw over ``matvec``/``matmat`` calls.

        Non-symmetric operators run the same odd polynomial on the symmetric
        dilation ``H = [[0, A], [Aᵀ, 0]]``: with ``Aᵀ = V Σ Wᵀ``, an odd
        ``p`` gives ``p(H/α) [b; 0] = [0; V p(Σ/α) Wᵀ b]`` — the bottom
        block is *exactly* what the dense route computes from the SVD of
        ``A†``, at twice the matvec cost and still O(nnz) memory.
        """
        operator = self.matrix
        inv_alpha = 1.0 / self.alpha
        coefficients = self.polynomial.coefficients
        if not self._dilated:
            if normalized.ndim == 1:
                apply = lambda w: inv_alpha * operator.matvec(w)  # noqa: E731
            else:
                apply = lambda w: inv_alpha * operator.matmat(w)  # noqa: E731
            return evaluate_chebyshev_operator(coefficients, apply, normalized)
        n = operator.shape[0]
        if normalized.ndim == 1:
            def apply(w):
                return inv_alpha * np.concatenate(
                    [operator.matvec(w[n:]), operator.rmatvec(w[:n])])
            stacked = np.concatenate([normalized, np.zeros(n)])
        else:
            def apply(w):
                return inv_alpha * np.vstack(
                    [operator.matmat(w[n:]), operator.rmatmat(w[:n])])
            stacked = np.vstack([normalized, np.zeros_like(normalized)])
        return evaluate_chebyshev_operator(coefficients, apply, stacked)[n:]

    def apply_inverse(self, rhs) -> BackendApplication:
        if not self._prepared:
            raise BackendError("call prepare() before apply_inverse()")
        vector = as_vector(rhs, name="rhs").astype(float)
        norm = np.linalg.norm(vector)
        if norm == 0.0:
            raise BackendError("cannot apply the inverse to a zero right-hand side")
        if self._matrix_free:
            raw = self._transform_matrix_free(vector / norm)
        else:
            transformed = evaluate_chebyshev(self.polynomial.coefficients, self._sigma / self.alpha)
            raw = self._v @ (transformed * (self._wh @ (vector / norm)))
        raw_norm = np.linalg.norm(raw)
        if raw_norm == 0.0:
            raise BackendError("polynomial transformation produced a zero vector")
        direction = self.sampling.read_out(raw / raw_norm)
        return BackendApplication(
            direction=direction,
            block_encoding_calls=self.polynomial.degree,
            polynomial_degree=self.polynomial.degree,
            success_probability=1.0,
            shots=self.sampling.shots_used(),
        )

    def apply_inverse_batch(self, rhs_batch) -> list[BackendApplication]:
        """Batched inverse: one contraction sweep for all ``B`` right-hand sides.

        Dense route: the Chebyshev transform of the singular values is
        evaluated once and the whole batch is pushed through
        ``V diag(P(Σ/α)) W†`` as a single matrix-matrix product.  Matrix-free
        route: one Clenshaw recurrence over ``matmat`` calls updates all
        ``B`` columns per Chebyshev term.
        """
        if not self._prepared:
            raise BackendError("call prepare() before apply_inverse_batch()")
        batch = np.atleast_2d(np.asarray(rhs_batch, dtype=float))
        norms = np.linalg.norm(batch, axis=1)
        if np.any(norms == 0.0):
            raise BackendError("cannot apply the inverse to a zero right-hand side")
        if self._matrix_free:
            raw = self._transform_matrix_free((batch / norms[:, None]).T).T
        else:
            transformed = evaluate_chebyshev(self.polynomial.coefficients, self._sigma / self.alpha)
            raw = (self._v @ (transformed[:, None] * (self._wh @ (batch / norms[:, None]).T))).T
        raw_norms = np.linalg.norm(raw, axis=1)
        if np.any(raw_norms == 0.0):
            raise BackendError("polynomial transformation produced a zero vector")
        return [
            BackendApplication(
                direction=self.sampling.read_out(raw[i] / raw_norms[i]),
                block_encoding_calls=self.polynomial.degree,
                polynomial_degree=self.polynomial.degree,
                success_probability=1.0,
                shots=self.sampling.shots_used(),
            )
            for i in range(batch.shape[0])
        ]

    def payload_bytes(self) -> int:
        total = super().payload_bytes()
        if self._prepared:
            if self._matrix_free:
                total += int(np.asarray(self.polynomial.coefficients).nbytes)
            else:
                total += int(self._v.nbytes + self._sigma.nbytes + self._wh.nbytes)
        return total

    def export_payload(self) -> dict:
        from ..linalg.operators import operator_state_payload

        if not self._prepared:
            raise BackendError("call prepare() before export_payload()")
        arrays = {
            "poly_coefficients": np.asarray(self.polynomial.coefficients,
                                            dtype=float),
        }
        meta = {
            "backend": self.name,
            "epsilon_l": float(self.epsilon_l),
            "kappa_effective": float(self.kappa_effective),
            "alpha": float(self.alpha),
            "polynomial": _polynomial_meta(self.polynomial),
        }
        if self._matrix_free:
            # a matrix-free synthesis is the operator state plus the
            # calibrated polynomial — both tiny, both restorable in any
            # process; the estimated-spectrum work (Lanczos / Golub–Kahan)
            # is what the store round-trip skips.
            op_meta, op_arrays = operator_state_payload(self.matrix)
            meta["operator_state"] = op_meta
            arrays.update(op_arrays)
        else:
            arrays.update({
                "matrix": self.matrix,
                "svd_v": self._v,
                "svd_sigma": self._sigma,
                "svd_wh": self._wh,
            })
        return {"meta": meta, "arrays": arrays}

    def import_payload(self, payload: dict) -> None:
        from ..linalg.operators import operator_from_payload

        meta, arrays = payload["meta"], payload["arrays"]
        if meta.get("backend") != self.name:
            raise BackendError(
                f"payload was exported by backend {meta.get('backend')!r}, "
                f"not {self.name!r}")
        if "operator_state" in meta:
            operator = operator_from_payload(meta["operator_state"], arrays)
            self.matrix = operator
            self._matrix_free = True
            self._dilated = not operator.is_symmetric
            self._v = self._sigma = self._wh = None
            restored = operator
        else:
            mat = check_square(np.asarray(arrays["matrix"], dtype=float),
                               name="A")
            self.matrix = mat
            self._matrix_free = False
            self._v = np.asarray(arrays["svd_v"])
            self._sigma = np.asarray(arrays["svd_sigma"])
            self._wh = np.asarray(arrays["svd_wh"])
            restored = mat
        self.alpha = float(meta["alpha"])
        self.kappa_effective = float(meta["kappa_effective"])
        self.polynomial = _polynomial_from_meta(meta["polynomial"],
                                                arrays["poly_coefficients"])
        self.epsilon_l = float(meta["epsilon_l"])
        self._record_synthesis(restored)
        self._prepared = True

    def describe(self) -> dict:
        info = {"backend": self.name, "sampling": self.sampling.mode}
        if self._prepared:
            info.update({
                "polynomial_degree": self.polynomial.degree,
                "kappa_effective": self.kappa_effective,
                "achieved_epsilon_l": self.polynomial.relative_inverse_error(),
                "matrix_free": self._matrix_free,
            })
            if self._matrix_free:
                info["structure"] = self.matrix.structure
        return info


# ---------------------------------------------------------------------- #
# exact-inverse surrogate backend
# ---------------------------------------------------------------------- #
class ExactInverseBackend(QSVTBackend):
    """Surrogate backend realising the Theorem III.1 hypothesis exactly.

    It computes the exact solution direction and perturbs it by a random
    vector of relative norm ``ε_l`` — i.e. a solver with relative error
    *exactly* ``ε_l``, handy for convergence-theory tests and cheap ablations.
    """

    name = "exact-inverse"

    def __init__(self, *, rng=None, sampling: SamplingModel | None = None) -> None:
        self.rng = as_generator(rng)
        self.sampling = sampling if sampling is not None else SamplingModel()
        # numpy Generators are not thread-safe and the engine layer shares
        # compiled backends across worker threads (cache + thread-mode
        # runner); serialise the draws.
        self._rng_lock = threading.Lock()
        self._prepared = False

    def prepare(self, matrix, *, epsilon_l: float, kappa: float | None = None) -> None:
        from ..linalg.operators import is_structured_operator

        if is_structured_operator(matrix):
            # structured operators bring their own exact classical solve
            # (Thomas / banded LU, Kronecker fast diagonalisation, CG), so
            # the surrogate stays O(nnz)-ish instead of densifying.
            self.matrix = check_square(matrix, name="A")
        else:
            self.matrix = check_square(np.asarray(matrix, dtype=float), name="A")
        self.epsilon_l = float(epsilon_l)
        self._lu = None
        self._record_synthesis(self.matrix)
        self._prepared = True

    def apply_inverse(self, rhs) -> BackendApplication:
        from ..linalg.operators import is_structured_operator

        if not self._prepared:
            raise BackendError("call prepare() before apply_inverse()")
        vector = as_vector(rhs, name="rhs").astype(float)
        if is_structured_operator(self.matrix):
            exact = self.matrix.solve(vector)
        else:
            exact = np.linalg.solve(self.matrix, vector)
        with self._rng_lock:
            perturbation = self.rng.standard_normal(exact.shape[0])
        perturbation *= self.epsilon_l * np.linalg.norm(exact) / np.linalg.norm(perturbation)
        noisy = exact + perturbation
        direction = self.sampling.read_out(noisy / np.linalg.norm(noisy))
        return BackendApplication(direction=direction, block_encoding_calls=0,
                                  polynomial_degree=0, success_probability=1.0,
                                  shots=self.sampling.shots_used())

    def describe(self) -> dict:
        return {"backend": self.name, "epsilon_l": getattr(self, "epsilon_l", None)}


# ---------------------------------------------------------------------- #
def make_backend(name: str = "auto", **kwargs) -> QSVTBackend:
    """Create a backend from a name (``"circuit"``, ``"ideal"``, ``"exact"``, ``"auto"``).

    ``"auto"`` returns the circuit backend — the caller
    (:class:`repro.core.qsvt_solver.QSVTLinearSolver`) decides whether to
    downgrade to the ideal backend based on the expected polynomial degree.
    """
    key = name.lower()
    if key in ("circuit", "circuit-qsvt", "auto"):
        return CircuitQSVTBackend(**kwargs)
    if key in ("ideal", "ideal-polynomial", "polynomial"):
        return IdealPolynomialBackend(**kwargs)
    if key in ("exact", "exact-inverse", "surrogate"):
        return ExactInverseBackend(**kwargs)
    raise BackendError(f"unknown backend {name!r}")
