"""Single-solve QSVT linear solver (Sec. II-A4 and Remark 2 of the paper).

:class:`QSVTLinearSolver` owns one matrix ``A``: at construction it performs
the classical "circuit synthesis" (block-encoding of ``A†``, inverse
polynomial, QSP phases) through its backend, and every call to :meth:`solve`
then performs

1. normalisation of the right-hand side (quantum states are unit vectors),
2. the QSVT application on the QPU backend and the read-out of the solution
   direction ``η``,
3. the classical de-normalisation ``μ = argmin_μ ||rhs − μ A η||`` of Remark 2,
4. assembly of the solution ``x = μ η`` and of the solve record.

Used on its own it is the "QSVT only" solver of Table I / Fig. 5; plugged into
:class:`repro.core.refinement.MixedPrecisionRefinement` it becomes the inner
solver of Algorithm 2.

Synthesis lifecycle
-------------------
The expensive synthesis is performed **once** and keyed to the matrix bytes
(:func:`repro.utils.matrix_fingerprint`).  Mutating the matrix in place after
construction no longer silently reuses the stale circuits: :meth:`solve`
raises :class:`~repro.exceptions.StaleSynthesisError` and the caller decides
between :meth:`recompile` (refresh the synthesis for the new bytes) or a new
solver.  :class:`repro.engine.cache.CompiledSolverCache` keys its entries on
the same fingerprint, so a cached solver can never serve a mutated matrix.

For many right-hand sides against the same matrix, :meth:`solve_batch`
answers the whole stack through the backend's batched application (one
circuit sweep on the circuit backend) instead of ``B`` independent solves.
"""

from __future__ import annotations

import time

import numpy as np

from ..exceptions import StaleSynthesisError
from ..linalg import condition_number, scaled_residual
from ..obs.trace import span as obs_span
from ..qsp.inverse_polynomial import (
    inverse_polynomial_degree,
    polynomial_error_from_solution_accuracy,
)
from ..utils import (
    as_vector,
    check_square,
    is_linear_operator,
    is_power_of_two,
    matrix_fingerprint,
    payload_nbytes,
)
from .backends import CircuitQSVTBackend, IdealPolynomialBackend, QSVTBackend, make_backend
from .normalization import recover_scale
from .results import SingleSolveRecord

__all__ = ["QSVTLinearSolver", "auto_backend_name"]

#: polynomial degree above which the ``"auto"`` backend falls back to the
#: ideal-polynomial backend (phase solving beyond this degree is slow and the
#: two backends agree to simulation accuracy anyway).
_AUTO_DEGREE_LIMIT = 350
#: data-register size above which the ``"auto"`` backend avoids the dense
#: circuit simulation.
_AUTO_DIMENSION_LIMIT = 64


def auto_backend_name(kappa: float, epsilon_l: float, dimension: int) -> str:
    """The backend name the ``"auto"`` mode picks for ``(κ, ε_l, N)``.

    Single source of the decision rule: :class:`QSVTLinearSolver` applies it
    when constructed with ``backend="auto"``, and the engine autotuner uses
    it to pin an explicit backend name on jobs *before* synthesis — the two
    must never drift apart, or tuned jobs would land on different cache keys
    than auto-resolved ones.  Non-power-of-two sizes cannot enter the
    circuit encodings at all, so they always resolve to the ideal backend.
    """
    if not is_power_of_two(int(dimension)):
        return "ideal"
    expected_error = polynomial_error_from_solution_accuracy(epsilon_l, kappa)
    expected_degree = inverse_polynomial_degree(kappa, expected_error)
    if expected_degree <= _AUTO_DEGREE_LIMIT and dimension <= _AUTO_DIMENSION_LIMIT:
        return "circuit"
    return "ideal"


class QSVTLinearSolver:
    """Quantum linear solver with accuracy ``ε_l`` for a fixed matrix.

    Parameters
    ----------
    matrix:
        System matrix ``A`` (``N x N`` with ``N`` a power of two).
    epsilon_l:
        Requested relative accuracy of one solve (the "low precision" of the
        mixed-precision scheme).
    backend:
        A :class:`~repro.core.backends.QSVTBackend` instance, a backend name
        (``"circuit"``, ``"ideal"``, ``"exact"``) or ``"auto"`` (default):
        circuit-level simulation when the expected polynomial degree and the
        problem size allow it, ideal-polynomial otherwise.
    kappa:
        Condition number to size the inverse polynomial; computed exactly from
        the SVD when omitted (``O(N³)`` classical preprocessing).
    scale_recovery:
        ``"analytic"`` or ``"brent"`` — method used for the de-normalisation.
    backend_options:
        Extra keyword arguments forwarded to the backend factory when
        ``backend`` is given by name.
    """

    def __init__(self, matrix, *, epsilon_l: float = 1e-2,
                 backend: QSVTBackend | str = "auto", kappa: float | None = None,
                 scale_recovery: str = "analytic", **backend_options) -> None:
        if is_linear_operator(matrix):
            # structured operators stay structured end-to-end: no dense copy,
            # no O(N³) SVD for κ (exact bounds or pinned value instead), and
            # "auto" resolves to the ideal backend's matrix-free route.
            self.matrix = check_square(matrix, name="A")
        else:
            self.matrix = check_square(np.asarray(matrix, dtype=float), name="A")
        if not 0.0 < epsilon_l < 1.0:
            raise ValueError("epsilon_l must be in (0, 1)")
        self.epsilon_l = float(epsilon_l)
        self._user_kappa = None if kappa is None else float(kappa)
        self.kappa = self._user_kappa if kappa is not None else self._default_kappa()
        self.scale_recovery = scale_recovery
        self.backend = self._resolve_backend(backend, backend_options)
        self._compile()

    # ------------------------------------------------------------------ #
    def _resolve_backend(self, backend, backend_options) -> QSVTBackend:
        if isinstance(backend, QSVTBackend):
            return backend
        if backend != "auto":
            return make_backend(backend, **backend_options)
        if is_linear_operator(self.matrix):
            # matrix-free solves route through the ideal backend; the dense
            # circuit simulation is opt-in for operators (backend="circuit").
            return IdealPolynomialBackend(**backend_options)
        name = auto_backend_name(self.kappa, self.epsilon_l,
                                 self.matrix.shape[0])
        if name == "circuit":
            return CircuitQSVTBackend(**backend_options)
        return IdealPolynomialBackend(**backend_options)

    def _default_kappa(self) -> float:
        """κ for the polynomial when the caller did not pin one.

        Dense matrices keep the exact SVD condition number (the ``O(N³)``
        classical preprocessing of the paper).  Structured operators stay
        matrix-free end-to-end: exact ``condition_bound`` values win, and
        operators without one (indefinite Helmholtz, non-symmetric
        convection–diffusion) fall back to safety-widened Lanczos /
        Golub–Kahan estimates instead of densifying for an SVD.
        """
        if is_linear_operator(self.matrix):
            from ..linalg.cond import estimate_operator_condition

            return estimate_operator_condition(self.matrix, rng=0)
        return condition_number(self.matrix)

    # ------------------------------------------------------------------ #
    # synthesis lifecycle
    # ------------------------------------------------------------------ #
    def _compile(self) -> None:
        """Run the backend synthesis and record the matrix fingerprint."""
        start = time.perf_counter()
        self.backend.prepare(self.matrix, epsilon_l=self.epsilon_l, kappa=self.kappa)
        self.preparation_time = time.perf_counter() - start
        self.fingerprint = matrix_fingerprint(self.matrix)
        # prepare() just ran against exactly these bytes; recording the
        # fingerprint on the backend here keeps third-party subclasses whose
        # prepare() does not call _record_synthesis working through the
        # solver (and is a no-op for the built-in backends).
        self.backend.synthesis_fingerprint = self.fingerprint

    def is_stale(self) -> bool:
        """True when the matrix bytes changed since the last synthesis.

        The solver holds a *reference* to the matrix, so an in-place mutation
        (``A *= 2``, ``A[0, 0] = ...``) changes the system but not the
        compiled block-encoding / polynomial / phases.  This check — a hash of
        the matrix bytes — detects the divergence.
        """
        return matrix_fingerprint(self.matrix) != self.fingerprint

    def recompile(self) -> "QSVTLinearSolver":
        """Re-run the circuit synthesis against the current matrix bytes.

        Refreshes the condition number (unless one was pinned at
        construction), the block-encoding, the inverse polynomial and the QSP
        phases.  Returns ``self`` so the call chains:
        ``solver.recompile().solve(rhs)``.
        """
        self.kappa = (self._user_kappa if self._user_kappa is not None
                      else self._default_kappa())
        self._compile()
        return self

    # ------------------------------------------------------------------ #
    # compiled-payload export / import (persistent synthesis store)
    # ------------------------------------------------------------------ #
    def export_payload(self) -> dict:
        """Serialisable snapshot of the compiled solver.

        Bundles the backend's compiled payload (block-encoding metadata,
        inverse polynomial, QSP phases, fused execution plans — see
        :meth:`repro.core.backends.QSVTBackend.export_payload`) with the
        solver-level parameters, so :meth:`from_payload` can rebuild an
        equivalent solver without any synthesis.  Raises
        :class:`NotImplementedError` when the backend does not support
        export (e.g. the exact-inverse surrogate).
        """
        payload = self.backend.export_payload()
        meta = dict(payload["meta"])
        meta["solver"] = {
            "epsilon_l": float(self.epsilon_l),
            "kappa": float(self.kappa),
            "user_kappa": self._user_kappa,
            "scale_recovery": self.scale_recovery,
        }
        return {"meta": meta, "arrays": payload["arrays"]}

    @classmethod
    def from_payload(cls, payload: dict, **backend_options) -> "QSVTLinearSolver":
        """Rebuild a solver from :meth:`export_payload` output — no synthesis.

        The backend class is chosen from the payload metadata (the *resolved*
        backend, so a payload exported by an ``"auto"`` solver restores the
        concrete circuit or ideal backend it resolved to) and its compiled
        state is imported verbatim; ``backend_options`` are forwarded to the
        backend constructor so restore-time configuration (e.g. a sampling
        model) still applies.  ``preparation_time`` records the restore cost,
        which is what the persistent store's hit-vs-compile speedup measures.
        """
        meta = payload["meta"]
        solver_meta = meta["solver"]
        start = time.perf_counter()
        backend = make_backend(meta["backend"], **backend_options)
        backend.import_payload(payload)
        solver = cls.__new__(cls)
        solver.matrix = backend.matrix
        solver.epsilon_l = float(solver_meta["epsilon_l"])
        solver._user_kappa = (None if solver_meta["user_kappa"] is None
                              else float(solver_meta["user_kappa"]))
        solver.kappa = float(solver_meta["kappa"])
        solver.scale_recovery = solver_meta["scale_recovery"]
        solver.backend = backend
        solver.fingerprint = matrix_fingerprint(solver.matrix)
        solver.backend.synthesis_fingerprint = solver.fingerprint
        solver.preparation_time = time.perf_counter() - start
        return solver

    def _check_fresh(self) -> None:
        # one hash covers both staleness modes: the stored digests are
        # compared against a single fingerprint of the current bytes.
        current = matrix_fingerprint(self.matrix)
        if current != self.fingerprint:
            raise StaleSynthesisError(
                "the matrix was modified in place after circuit synthesis; call "
                "recompile() to refresh the block-encoding/polynomial/phases, or "
                "build a new QSVTLinearSolver")
        # the backend may be shared: another solver (or a direct prepare()
        # call) can have re-synthesised it for a different matrix, in which
        # case this solver's matrix is intact but the backend's compiled
        # artefacts are not ours anymore.
        if current != self.backend.synthesis_fingerprint:
            raise StaleSynthesisError(
                "the backend's compiled synthesis no longer matches this solver's "
                "matrix (the backend instance was re-prepared for a different "
                "matrix — e.g. it is shared between solvers); call recompile() or "
                "give each solver its own backend")

    # ------------------------------------------------------------------ #
    @property
    def dimension(self) -> int:
        """Problem dimension ``N``."""
        return self.matrix.shape[0]

    def payload_bytes(self) -> int:
        """Bytes kept alive by this solver: its matrix plus the backend's
        compiled artefacts (execution plans, phases, SVD factors).

        :class:`repro.engine.cache.CompiledSolverCache` uses this for
        byte-accounted eviction.
        """
        payload = getattr(self.backend, "payload_bytes", None)
        total = int(payload()) if callable(payload) else 0
        # the backend usually holds the same matrix object and already
        # counted it; only add ours when it is a distinct buffer (structured
        # operators are charged their nnz bytes, not the dense N²·8).
        if getattr(self.backend, "matrix", None) is not self.matrix:
            total += payload_nbytes(self.matrix)
        return total

    def describe(self) -> dict:
        """Metadata about the prepared solver (backend, degree, ``κ``...)."""
        info = self.backend.describe()
        info.update({"epsilon_l": self.epsilon_l, "kappa": self.kappa,
                     "dimension": self.dimension,
                     "preparation_time": self.preparation_time})
        return info

    def solve(self, rhs) -> SingleSolveRecord:
        """Solve ``A x = rhs`` once at accuracy ``ε_l``.

        Returns a :class:`~repro.core.results.SingleSolveRecord`; the
        de-normalised solution is ``record.x``.
        """
        b = as_vector(rhs, name="rhs").astype(float)
        if b.shape[0] != self.dimension:
            raise ValueError("right-hand side length does not match the matrix")
        self._check_fresh()
        start = time.perf_counter()
        with obs_span("sweep", batch=1, dimension=self.dimension,
                      backend=type(self.backend).__name__):
            application = self.backend.apply_inverse(b)
        elapsed = time.perf_counter() - start
        return self._assemble_record(application, b, elapsed)

    def solve_batch(self, rhs_batch) -> list[SingleSolveRecord]:
        """Solve ``A x = b_i`` for a stack of right-hand sides at accuracy ``ε_l``.

        ``rhs_batch`` is array-like of shape ``(B, N)``.  The compiled
        synthesis is shared and the backend answers the whole batch in one
        application (a single circuit sweep on the circuit backend, see
        :meth:`repro.core.backends.CircuitQSVTBackend.apply_inverse_batch`);
        only the cheap classical de-normalisation runs per right-hand side.
        Returns one :class:`~repro.core.results.SingleSolveRecord` per row,
        with the shared quantum wall time split evenly across the records.
        """
        batch = np.atleast_2d(np.asarray(rhs_batch, dtype=float))
        if batch.shape[1] != self.dimension:
            raise ValueError("right-hand side length does not match the matrix")
        self._check_fresh()
        start = time.perf_counter()
        with obs_span("sweep", batch=int(batch.shape[0]),
                      dimension=self.dimension,
                      backend=type(self.backend).__name__):
            applications = self.backend.apply_inverse_batch(batch)
        elapsed = (time.perf_counter() - start) / max(len(applications), 1)
        return [self._assemble_record(application, batch[i], elapsed)
                for i, application in enumerate(applications)]

    # ------------------------------------------------------------------ #
    def _assemble_record(self, application, b: np.ndarray,
                         elapsed: float) -> SingleSolveRecord:
        """De-normalise one backend application into a solve record."""
        direction = np.real(np.asarray(application.direction, dtype=float))
        scale = recover_scale(self.matrix, direction, b, method=self.scale_recovery)
        x = scale * direction
        omega = scaled_residual(self.matrix, x, b) if np.linalg.norm(b) > 0 else 0.0
        return SingleSolveRecord(
            x=x,
            direction=direction,
            scale=float(scale),
            scaled_residual=float(omega),
            block_encoding_calls=application.block_encoding_calls,
            polynomial_degree=application.polynomial_degree,
            success_probability=application.success_probability,
            shots=application.shots,
            wall_time=elapsed,
        )
