"""Single-solve QSVT linear solver (Sec. II-A4 and Remark 2 of the paper).

:class:`QSVTLinearSolver` owns one matrix ``A``: at construction it performs
the classical "circuit synthesis" (block-encoding of ``A†``, inverse
polynomial, QSP phases) through its backend, and every call to :meth:`solve`
then performs

1. normalisation of the right-hand side (quantum states are unit vectors),
2. the QSVT application on the QPU backend and the read-out of the solution
   direction ``η``,
3. the classical de-normalisation ``μ = argmin_μ ||rhs − μ A η||`` of Remark 2,
4. assembly of the solution ``x = μ η`` and of the solve record.

Used on its own it is the "QSVT only" solver of Table I / Fig. 5; plugged into
:class:`repro.core.refinement.MixedPrecisionRefinement` it becomes the inner
solver of Algorithm 2.
"""

from __future__ import annotations

import time

import numpy as np

from ..linalg import condition_number, scaled_residual
from ..qsp.inverse_polynomial import (
    inverse_polynomial_degree,
    polynomial_error_from_solution_accuracy,
)
from ..utils import as_vector, check_square
from .backends import CircuitQSVTBackend, IdealPolynomialBackend, QSVTBackend, make_backend
from .normalization import recover_scale
from .results import SingleSolveRecord

__all__ = ["QSVTLinearSolver"]

#: polynomial degree above which the ``"auto"`` backend falls back to the
#: ideal-polynomial backend (phase solving beyond this degree is slow and the
#: two backends agree to simulation accuracy anyway).
_AUTO_DEGREE_LIMIT = 350
#: data-register size above which the ``"auto"`` backend avoids the dense
#: circuit simulation.
_AUTO_DIMENSION_LIMIT = 64


class QSVTLinearSolver:
    """Quantum linear solver with accuracy ``ε_l`` for a fixed matrix.

    Parameters
    ----------
    matrix:
        System matrix ``A`` (``N x N`` with ``N`` a power of two).
    epsilon_l:
        Requested relative accuracy of one solve (the "low precision" of the
        mixed-precision scheme).
    backend:
        A :class:`~repro.core.backends.QSVTBackend` instance, a backend name
        (``"circuit"``, ``"ideal"``, ``"exact"``) or ``"auto"`` (default):
        circuit-level simulation when the expected polynomial degree and the
        problem size allow it, ideal-polynomial otherwise.
    kappa:
        Condition number to size the inverse polynomial; computed exactly from
        the SVD when omitted (``O(N³)`` classical preprocessing).
    scale_recovery:
        ``"analytic"`` or ``"brent"`` — method used for the de-normalisation.
    backend_options:
        Extra keyword arguments forwarded to the backend factory when
        ``backend`` is given by name.
    """

    def __init__(self, matrix, *, epsilon_l: float = 1e-2,
                 backend: QSVTBackend | str = "auto", kappa: float | None = None,
                 scale_recovery: str = "analytic", **backend_options) -> None:
        self.matrix = check_square(np.asarray(matrix, dtype=float), name="A")
        if not 0.0 < epsilon_l < 1.0:
            raise ValueError("epsilon_l must be in (0, 1)")
        self.epsilon_l = float(epsilon_l)
        self.kappa = float(kappa) if kappa is not None else condition_number(self.matrix)
        self.scale_recovery = scale_recovery
        self.backend = self._resolve_backend(backend, backend_options)
        start = time.perf_counter()
        self.backend.prepare(self.matrix, epsilon_l=self.epsilon_l, kappa=self.kappa)
        self.preparation_time = time.perf_counter() - start

    # ------------------------------------------------------------------ #
    def _resolve_backend(self, backend, backend_options) -> QSVTBackend:
        if isinstance(backend, QSVTBackend):
            return backend
        if backend != "auto":
            return make_backend(backend, **backend_options)
        expected_error = polynomial_error_from_solution_accuracy(self.epsilon_l, self.kappa)
        expected_degree = inverse_polynomial_degree(self.kappa, expected_error)
        if (expected_degree <= _AUTO_DEGREE_LIMIT
                and self.matrix.shape[0] <= _AUTO_DIMENSION_LIMIT):
            return CircuitQSVTBackend(**backend_options)
        return IdealPolynomialBackend(**backend_options)

    # ------------------------------------------------------------------ #
    @property
    def dimension(self) -> int:
        """Problem dimension ``N``."""
        return self.matrix.shape[0]

    def describe(self) -> dict:
        """Metadata about the prepared solver (backend, degree, ``κ``...)."""
        info = self.backend.describe()
        info.update({"epsilon_l": self.epsilon_l, "kappa": self.kappa,
                     "dimension": self.dimension,
                     "preparation_time": self.preparation_time})
        return info

    def solve(self, rhs) -> SingleSolveRecord:
        """Solve ``A x = rhs`` once at accuracy ``ε_l``.

        Returns a :class:`~repro.core.results.SingleSolveRecord`; the
        de-normalised solution is ``record.x``.
        """
        b = as_vector(rhs, name="rhs").astype(float)
        if b.shape[0] != self.dimension:
            raise ValueError("right-hand side length does not match the matrix")
        start = time.perf_counter()
        application = self.backend.apply_inverse(b)
        direction = np.real(np.asarray(application.direction, dtype=float))
        scale = recover_scale(self.matrix, direction, b, method=self.scale_recovery)
        x = scale * direction
        elapsed = time.perf_counter() - start
        omega = scaled_residual(self.matrix, x, b) if np.linalg.norm(b) > 0 else 0.0
        return SingleSolveRecord(
            x=x,
            direction=direction,
            scale=float(scale),
            scaled_residual=float(omega),
            block_encoding_calls=application.block_encoding_calls,
            polynomial_degree=application.polynomial_degree,
            success_probability=application.success_probability,
            shots=application.shots,
            wall_time=elapsed,
        )
