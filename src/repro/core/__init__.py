"""Core of the reproduction: the mixed-precision QSVT linear solver.

This sub-package assembles the substrates (block-encodings, QSP phases, the
state-vector simulator, classical linear algebra) into the two algorithms the
paper contributes:

* :class:`~repro.core.qsvt_solver.QSVTLinearSolver` — one linear solve at a
  prescribed low accuracy ``ε_l`` through the QSVT (Sec. II-A4), including the
  normalisation / de-normalisation of Remark 2;
* :class:`~repro.core.refinement.MixedPrecisionRefinement` — Algorithm 2:
  hybrid CPU/QPU iterative refinement that drives the scaled residual below a
  target ``ε`` while each inner solve only needs accuracy ``ε_l``.

It also hosts the analysis artefacts of Sec. III: the convergence bound of
Theorem III.1 (:mod:`repro.core.convergence`), the quantum/classical cost
model of Tables I–II (:mod:`repro.core.cost_model`), and the CPU–QPU
communication trace of Fig. 1 (:mod:`repro.core.communication`).
"""

from .results import RefinementIteration, RefinementResult, SingleSolveRecord
from .sampling import SamplingModel
from .normalization import brent_minimize, recover_scale
from .backends import (
    BackendApplication,
    CircuitQSVTBackend,
    ExactInverseBackend,
    IdealPolynomialBackend,
    QSVTBackend,
    make_backend,
)
from .qsvt_solver import QSVTLinearSolver
from .classical_refinement import ClassicalLUSolver, mixed_precision_lu_refinement
from .refinement import MixedPrecisionRefinement, refine
from .convergence import (
    contraction_factor,
    iteration_bound,
    is_convergent,
    predicted_scaled_residuals,
)
from .cost_model import (
    CostBreakdown,
    block_encoding_calls_per_solve,
    epsilon_l_candidates,
    kappa_model_names,
    measured_kappa,
    optimal_epsilon_l,
    poisson_complexity_table,
    poisson_tgate_estimate,
    predicted_kappa,
    resolved_kappa,
    quantum_cost_table,
    refinement_block_encoding_calls,
    refinement_quantum_cost,
    register_kappa_model,
    unregister_kappa_model,
    qsvt_only_quantum_cost,
    samples_for_accuracy,
)
from .communication import CommunicationTrace, TransferEvent
from .preconditioning import (
    IdentityPreconditioner,
    JacobiPreconditioner,
    Preconditioner,
    RowEquilibrationPreconditioner,
    make_preconditioner,
    preconditioned_refine,
)

__all__ = [
    "SingleSolveRecord",
    "RefinementIteration",
    "RefinementResult",
    "SamplingModel",
    "recover_scale",
    "brent_minimize",
    "QSVTBackend",
    "BackendApplication",
    "CircuitQSVTBackend",
    "IdealPolynomialBackend",
    "ExactInverseBackend",
    "make_backend",
    "QSVTLinearSolver",
    "MixedPrecisionRefinement",
    "refine",
    "ClassicalLUSolver",
    "mixed_precision_lu_refinement",
    "iteration_bound",
    "contraction_factor",
    "is_convergent",
    "predicted_scaled_residuals",
    "CostBreakdown",
    "samples_for_accuracy",
    "block_encoding_calls_per_solve",
    "qsvt_only_quantum_cost",
    "refinement_quantum_cost",
    "refinement_block_encoding_calls",
    "epsilon_l_candidates",
    "optimal_epsilon_l",
    "register_kappa_model",
    "unregister_kappa_model",
    "predicted_kappa",
    "measured_kappa",
    "resolved_kappa",
    "kappa_model_names",
    "quantum_cost_table",
    "poisson_complexity_table",
    "poisson_tgate_estimate",
    "CommunicationTrace",
    "TransferEvent",
    "Preconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "RowEquilibrationPreconditioner",
    "make_preconditioner",
    "preconditioned_refine",
]
