"""Quantum and classical cost models (Tables I and II of the paper).

Table I compares the quantum cost of solving ``Ax = b`` directly with the
QSVT at the target accuracy ``ε`` against the mixed-precision scheme that runs
the QSVT at a lower accuracy ``ε_l`` inside iterative refinement:

====================  =====================  ==========================================
quantity              QSVT only              QSVT + iterative refinement
====================  =====================  ==========================================
# solves              1                      ``⌈log ε / log(κ ε_l)⌉``
C_QSVT (BE calls)     ``O(B κ log(κ/ε))``    ``O(B κ log(κ/ε_l))``
# samples             ``O(1/ε²)``            ``O(1/ε_l²)``
total                 product of the above   product of the above
====================  =====================  ==========================================

The functions below provide both the asymptotic expressions (with explicit
constants chosen as 1) and *concrete* counts based on the actual degree of the
Eq. (4) polynomial, which is what Fig. 5 plots.  Table II specialises the
model to the 1-D Poisson problem of Sec. III-C4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..utils import Registry
from ..qsp.inverse_polynomial import (
    inverse_polynomial_degree,
    polynomial_error_from_solution_accuracy,
)
from .convergence import iteration_bound

__all__ = [
    "samples_for_accuracy",
    "block_encoding_calls_per_solve",
    "qsvt_only_quantum_cost",
    "refinement_quantum_cost",
    "refinement_block_encoding_calls",
    "epsilon_l_candidates",
    "optimal_epsilon_l",
    "register_kappa_model",
    "unregister_kappa_model",
    "predicted_kappa",
    "measured_kappa",
    "resolved_kappa",
    "kappa_model_names",
    "CostBreakdown",
    "quantum_cost_table",
    "poisson_complexity_table",
    "poisson_tgate_estimate",
]


# ---------------------------------------------------------------------- #
# elementary quantities
# ---------------------------------------------------------------------- #
def samples_for_accuracy(epsilon: float, *, constant: float = 1.0) -> float:
    """Measurement samples ``O(1/ε²)`` needed to read the solution to accuracy ε."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return float(np.ceil(constant / epsilon**2))


def block_encoding_calls_per_solve(kappa: float, epsilon_l: float, *,
                                   concrete: bool = True,
                                   error_convention: str = "conservative") -> float:
    """Calls to the block-encoding per QSVT solve.

    With ``concrete=True`` (default) this is the actual degree of the Eq. (4)
    polynomial for the accuracy ``ε_l``; otherwise the asymptotic expression
    ``κ log(κ/ε_l)`` is returned.
    """
    epsilon_poly = polynomial_error_from_solution_accuracy(epsilon_l, kappa,
                                                           error_convention)
    if concrete:
        return float(inverse_polynomial_degree(kappa, epsilon_poly))
    return float(kappa * np.log(kappa / epsilon_poly))


def qsvt_only_quantum_cost(kappa: float, epsilon: float, *,
                           block_encoding_cost: float = 1.0,
                           concrete: bool = True) -> float:
    """Total quantum cost of a single high-accuracy QSVT solve (Table I, left).

    Expressed in block-encoding-circuit invocations weighted by
    ``block_encoding_cost`` and multiplied by the required sample count.
    """
    calls = block_encoding_calls_per_solve(kappa, epsilon, concrete=concrete)
    return float(block_encoding_cost * calls * samples_for_accuracy(epsilon))


def refinement_quantum_cost(kappa: float, epsilon: float, epsilon_l: float, *,
                            block_encoding_cost: float = 1.0,
                            num_solves: int | None = None,
                            concrete: bool = True) -> float:
    """Total quantum cost of QSVT + iterative refinement (Table I, right).

    Parameters
    ----------
    num_solves:
        Measured number of inner solves (initial solve + refinement
        iterations); defaults to the Theorem III.1 bound plus one.
    """
    if num_solves is None:
        num_solves = iteration_bound(epsilon, epsilon_l, kappa) + 1
    calls = block_encoding_calls_per_solve(kappa, epsilon_l, concrete=concrete)
    return float(num_solves * block_encoding_cost * calls
                 * samples_for_accuracy(epsilon_l))


# ---------------------------------------------------------------------- #
# ε_l selection (the axis the autotuner optimises)
# ---------------------------------------------------------------------- #
def refinement_block_encoding_calls(kappa: float, epsilon: float,
                                    epsilon_l: float, *,
                                    num_solves: int | None = None,
                                    concrete: bool = True) -> float:
    """Total block-encoding calls of a refined solve (the Fig. 5 quantity).

    Unlike :func:`refinement_quantum_cost` this leaves out the measurement
    sample count: it is the QPU-circuit-invocation metric that
    ``RefinementResult.total_block_encoding_calls`` measures, so predictions
    and telemetry are directly comparable.
    """
    if num_solves is None:
        num_solves = iteration_bound(epsilon, epsilon_l, kappa) + 1
    return float(num_solves * block_encoding_calls_per_solve(
        kappa, epsilon_l, concrete=concrete))


def epsilon_l_candidates(kappa: float, epsilon: float, *, num: int = 48,
                         rho_max: float = 0.5) -> np.ndarray:
    """Log-spaced grid of admissible inner accuracies, largest first.

    Every candidate satisfies the Theorem III.1 convergence condition with
    margin (``ε_l κ <= rho_max < 1``); the grid reaches down to the target
    accuracy ``ε`` itself (below which extra inner accuracy buys nothing).
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must be in (0, 1)")
    if not np.isfinite(kappa) or not 1 <= kappa < 1e15:
        raise ValueError(
            "kappa must be a finite value in [1, 1e15) — at or beyond the "
            "inverse machine epsilon the matrix is numerically singular and "
            "there is no epsilon_l to pick")
    if not 0 < rho_max < 1:
        raise ValueError("rho_max must be in (0, 1)")
    upper = rho_max / kappa
    lower = min(epsilon, upper)
    return np.logspace(np.log10(upper), np.log10(lower), num)


def optimal_epsilon_l(kappa: float, epsilon: float, *, candidates=None,
                      objective: str = "block-encoding-calls",
                      concrete: bool = True) -> float:
    """Inner accuracy minimising the Table I cost of a refined solve.

    Parameters
    ----------
    objective:
        ``"block-encoding-calls"`` (default) minimises
        :func:`refinement_block_encoding_calls` — the circuit-invocation
        count that the engine telemetry measures; ``"total"`` minimises the
        full :func:`refinement_quantum_cost` including the ``O(1/ε_l²)``
        sample factor (which favours much larger ε_l).
    candidates:
        Explicit ε_l grid; defaults to :func:`epsilon_l_candidates`.  Ties
        resolve towards the largest (cheapest-per-solve) candidate.
    """
    if objective == "block-encoding-calls":
        cost = lambda eps_l: refinement_block_encoding_calls(  # noqa: E731
            kappa, epsilon, eps_l, concrete=concrete)
    elif objective == "total":
        cost = lambda eps_l: refinement_quantum_cost(  # noqa: E731
            kappa, epsilon, eps_l, concrete=concrete)
    else:
        raise ValueError(f"unknown objective {objective!r}; choose "
                         "'block-encoding-calls' or 'total'")
    if candidates is None:
        candidates = epsilon_l_candidates(kappa, epsilon)
    candidates = np.sort(np.asarray(candidates, dtype=float))[::-1]
    if candidates.size == 0:
        raise ValueError("candidate grid is empty")
    best_eps, best_cost = None, np.inf
    for eps_l in candidates:
        if eps_l * kappa >= 1.0:
            continue  # outside the Theorem III.1 convergence region
        value = cost(float(eps_l))
        if value < best_cost:
            best_eps, best_cost = float(eps_l), value
    if best_eps is None:
        raise ValueError(
            f"no candidate satisfies epsilon_l * kappa < 1 for kappa={kappa:g}")
    return best_eps


# ---------------------------------------------------------------------- #
# κ growth models (how the condition number scales with problem parameters)
# ---------------------------------------------------------------------- #
#: registered models: family name -> callable(**params) -> κ.  One instance
#: of the shared :class:`repro.utils.Registry` (duplicate guard, overwrite,
#: unregister, difflib suggestions), like the scenario registry and
#: ``PROBLEM_FAMILIES``.
_KAPPA_MODELS: Registry = Registry("kappa model")


def register_kappa_model(name: str, model: Callable[..., float] | None = None,
                         *, overwrite: bool = False):
    """Register an analytic condition-number model under ``name``.

    The Table II specialisation only knows the 1-D Poisson ``κ = O(N²)``
    growth; problem families (:mod:`repro.problems`) register their own
    analytic formulas here so cost predictions (and the autotuner) stay
    exact beyond the paper's single use case.  Usable as a decorator
    (``@register_kappa_model("heat-chain")``) or called directly with the
    model as second argument.
    """
    return _KAPPA_MODELS.register(name, model, overwrite=overwrite)


def predicted_kappa(name: str, **params) -> float:
    """Evaluate the registered κ growth model ``name`` for ``params``."""
    model = _KAPPA_MODELS[name]
    value = model(**params)
    if value is None:
        raise ValueError(
            f"kappa model {name!r} has no closed form for {params!r} "
            "(measure it from the matrix instead)")
    return float(value)


def measured_kappa(operator, *, rng=0) -> float:
    """Matrix-free κ estimate for operators without a registered growth model.

    The measuring companion of :func:`predicted_kappa`: symmetric operators
    go through safety-widened Lanczos Ritz values (valid for indefinite
    spectra — the shifted-Helmholtz case), non-symmetric ones through
    Golub–Kahan singular-value estimates (convection–diffusion), and exact
    ``condition_bound`` values win when the structure provides them.  The
    operator is never materialised, so cost predictions stay available at
    any ``N`` the matvec supports.
    """
    from ..linalg.cond import estimate_operator_condition

    return float(estimate_operator_condition(operator, rng=rng))


def resolved_kappa(name: str, operator=None, *, rng=0, **params) -> float:
    """κ from the registered model, measured from ``operator`` as fallback.

    Tries :func:`predicted_kappa` first (closed forms are free and exact);
    when the family has no registered model — or the model declines these
    parameters with ``ValueError`` (e.g. random-regular graph topologies) —
    falls back to :func:`measured_kappa` on the supplied operator.  With no
    operator to measure, the registry's error propagates unchanged.
    """
    try:
        return predicted_kappa(name, **params)
    except (KeyError, ValueError):
        if operator is None:
            raise
        return measured_kappa(operator, rng=rng)


def kappa_model_names() -> list[str]:
    """Sorted names of every registered κ growth model."""
    return _KAPPA_MODELS.names()


def unregister_kappa_model(name: str) -> bool:
    """Remove a registered κ growth model; returns whether it existed."""
    return _KAPPA_MODELS.unregister(name)


@register_kappa_model("poisson-1d")
def _poisson_1d_kappa(num_points: int = 16) -> float:
    """Analytic ``(2(N+1)/π)²`` growth of the 1-D Poisson matrix (Sec. III-C4).

    The signature is strict (no ``**kwargs``): a misspelled parameter name
    raises instead of silently evaluating κ at the ``N = 16`` default.
    """
    return float((2.0 * (int(num_points) + 1) / np.pi) ** 2)


# ---------------------------------------------------------------------- #
# Table I
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CostBreakdown:
    """One column of Table I."""

    method: str
    num_solves: float
    block_encoding_calls_per_solve: float
    samples_per_solve: float

    @property
    def total(self) -> float:
        """Product of the three factors (the "Total" row of Table I)."""
        return self.num_solves * self.block_encoding_calls_per_solve * self.samples_per_solve

    def as_row(self) -> dict:
        """Dictionary used by the reporting helpers."""
        return {
            "method": self.method,
            "# solves": self.num_solves,
            "BE calls / solve": self.block_encoding_calls_per_solve,
            "# samples / solve": self.samples_per_solve,
            "total": self.total,
        }


def quantum_cost_table(kappa: float, epsilon: float, epsilon_l: float, *,
                       num_solves: int | None = None,
                       concrete: bool = True) -> tuple[CostBreakdown, CostBreakdown]:
    """Both columns of Table I for a given ``(κ, ε, ε_l)`` triple.

    Returns ``(qsvt_only, qsvt_with_refinement)``.
    """
    direct = CostBreakdown(
        method="qsvt-only",
        num_solves=1.0,
        block_encoding_calls_per_solve=block_encoding_calls_per_solve(
            kappa, epsilon, concrete=concrete),
        samples_per_solve=samples_for_accuracy(epsilon),
    )
    solves = float(num_solves if num_solves is not None
                   else iteration_bound(epsilon, epsilon_l, kappa) + 1)
    refined = CostBreakdown(
        method="qsvt+ir",
        num_solves=solves,
        block_encoding_calls_per_solve=block_encoding_calls_per_solve(
            kappa, epsilon_l, concrete=concrete),
        samples_per_solve=samples_for_accuracy(epsilon_l),
    )
    return direct, refined


# ---------------------------------------------------------------------- #
# Table II (1-D Poisson)
# ---------------------------------------------------------------------- #
def poisson_complexity_table(num_qubits: int, *, epsilon: float, epsilon_l: float,
                             kappa: float | None = None) -> list[dict]:
    """Complexity breakdown for the Poisson use case (Table II).

    Each returned row has the fields ``task``, ``phase`` (``"first"`` or
    ``"iteration"``), ``classical_formula``, ``classical_estimate``,
    ``quantum_formula`` and ``quantum_estimate``.  Estimates substitute the
    concrete problem parameters into the asymptotic expressions (constants set
    to one); the big-O strings follow the paper (where ``O(2n)`` and ``O(4n)``
    denote ``O(2^n)`` and ``O(4^n)`` = ``O(N)`` and ``O(N²)``).
    """
    n = int(num_qubits)
    big_n = 2**n
    if kappa is None:
        # condition number of the unpreconditioned 1-D Poisson matrix grows as
        # (2(N+1)/π)² (Sec. III-C4 quotes O(N²))
        kappa = float((2.0 * (big_n + 1) / np.pi) ** 2)
    degree = block_encoding_calls_per_solve(kappa, epsilon_l)
    quantum_per_solve = n * degree
    rows = []
    for phase in ("first", "iteration"):
        rows.append({
            "task": "state preparation (SP)", "phase": phase,
            "classical_formula": "O(2^n)", "classical_estimate": float(big_n),
            "quantum_formula": "O(polylog(n))", "quantum_estimate": float(max(n, 1) ** 2),
        })
        rows.append({
            "task": "block-encoding (BE)", "phase": phase,
            "classical_formula": "-", "classical_estimate": 0.0,
            "quantum_formula": "O(n κ log(κ/ε_l))", "quantum_estimate": float(quantum_per_solve),
        })
        rows.append({
            "task": "QSVT (Φ, U_Φ)", "phase": phase,
            "classical_formula": "O(κ)" if phase == "first" else "-",
            "classical_estimate": float(kappa) if phase == "first" else 0.0,
            "quantum_formula": "O(n κ log(κ/ε_l))", "quantum_estimate": float(quantum_per_solve),
        })
        rows.append({
            "task": "solution (de-normalisation + residual)", "phase": phase,
            "classical_formula": "O(4^n + log(1/ε))",
            "classical_estimate": float(big_n**2 + np.log(1.0 / epsilon)),
            "quantum_formula": "-", "quantum_estimate": 0.0,
        })
    return rows


def poisson_tgate_estimate(num_qubits: int, *, epsilon_l: float,
                           kappa: float | None = None,
                           num_solves: int = 1) -> dict:
    """Concrete T-gate estimate for the Poisson solve using the gate-level pieces.

    Combines the resource estimate of the adder-based (circulant) tridiagonal
    block-encoding circuit, the projector-phase operators (two multi-controlled
    X plus one rotation each) and the decomposed tree state preparation, scaled
    by the polynomial degree and the number of solves.  This is the concrete
    counterpart of Table II's quantum column.
    """
    from ..blockencoding.banded import CirculantBlockEncoding
    from ..quantum.circuit import QuantumCircuit
    from ..quantum.resources import ResourceCounter
    from ..stateprep import prepare_state_circuit

    n = int(num_qubits)
    big_n = 2**n
    if kappa is None:
        kappa = float((2.0 * (big_n + 1) / np.pi) ** 2)
    degree = block_encoding_calls_per_solve(kappa, epsilon_l)
    counter = ResourceCounter()

    block = CirculantBlockEncoding(n)
    be_resources = counter.estimate(block.circuit())

    phase_circuit = QuantumCircuit(block.num_qubits + 1)
    zeros = [0] * block.num_ancillas
    phase_circuit.mcx(list(range(block.num_ancillas)), block.num_qubits, control_states=zeros)
    phase_circuit.rz(0.1, block.num_qubits)
    phase_circuit.mcx(list(range(block.num_ancillas)), block.num_qubits, control_states=zeros)
    phase_resources = counter.estimate(phase_circuit)

    rhs = np.ones(big_n)
    sp_resources = counter.estimate(prepare_state_circuit(rhs, decompose=True).circuit)

    t_per_solve = (degree * (be_resources.t_count + phase_resources.t_count)
                   + sp_resources.t_count)
    return {
        "num_qubits": n,
        "kappa": float(kappa),
        "polynomial_degree": float(degree),
        "t_count_block_encoding": be_resources.t_count,
        "t_count_projector_phase": phase_resources.t_count,
        "t_count_state_preparation": sp_resources.t_count,
        "t_count_per_solve": float(t_per_solve),
        "t_count_total": float(num_solves * t_per_solve),
    }
