"""Mixed-precision iterative refinement driver (Algorithm 2 of the paper).

The driver is generic over the inner solver: any object exposing ``matrix``
and ``solve(rhs) -> SingleSolveRecord`` can be refined, so the same code runs

* Algorithm 2 (QSVT inner solver on a QPU backend,
  :class:`repro.core.qsvt_solver.QSVTLinearSolver`), and
* Algorithm 1 (low-precision LU inner solver,
  :class:`repro.core.classical_refinement.ClassicalLUSolver`).

At every iteration the residual ``r_i = b − A x_i`` and the update
``x_{i+1} = x_i + e_i`` are computed at the *working* precision ``u`` on the
CPU, while the correction ``A e_i = r_i`` is delegated to the inner solver
(accuracy ``ε_l``).  The run stops when the scaled residual
``ω = ||b − A x̃|| / ||b||`` drops below the target ``ε``, when the iteration
budget is exhausted, or when the residual stagnates at the limiting accuracy
of the working precision.

Independent refinements against the *same* matrix batch through
:meth:`MixedPrecisionRefinement.solve_batch`: the residual solves of the
still-active systems are stacked and answered by one fused-plan circuit
sweep per iteration instead of one sweep per system.
"""

from __future__ import annotations

import time

import numpy as np

from ..linalg import condition_number, relative_forward_error, scaled_residual
from ..obs.trace import span as obs_span
from ..precision import PrecisionContext
from ..utils import as_vector, is_linear_operator
from .communication import CommunicationTrace
from .convergence import contraction_factor, iteration_bound, limiting_accuracy
from .results import RefinementIteration, RefinementResult

__all__ = ["MixedPrecisionRefinement", "refine"]


class MixedPrecisionRefinement:
    """Iterative refinement around a low-accuracy inner solver.

    Parameters
    ----------
    inner_solver:
        Object with ``matrix`` and ``solve(rhs) -> SingleSolveRecord``
        (e.g. :class:`~repro.core.qsvt_solver.QSVTLinearSolver`).
    target_accuracy:
        Target ``ε`` on the scaled residual.
    max_iterations:
        Iteration budget; defaults to twice the Theorem III.1 bound (plus a
        small margin) when the bound is available, otherwise 50.
    precision:
        :class:`~repro.precision.PrecisionContext` describing the working
        (and optionally residual) precision used on the CPU.
    epsilon_l / kappa:
        Values used for the theoretical bound; by default they are taken from
        the inner solver (preferring the backend's *achieved* accuracy when it
        reports one) and from the exact condition number.
    track_communication:
        Record a :class:`~repro.core.communication.CommunicationTrace`.
    stagnation_iterations:
        Stop after this many consecutive iterations without improving the best
        scaled residual (limiting-accuracy plateau).
    divergence_factor:
        Abort when the scaled residual grows by more than this factor above
        its best value (signals ``ε_l κ >= 1``).
    """

    def __init__(self, inner_solver, *, target_accuracy: float = 1e-10,
                 max_iterations: int | None = None,
                 precision: PrecisionContext | None = None,
                 epsilon_l: float | None = None, kappa: float | None = None,
                 track_communication: bool = True,
                 stagnation_iterations: int = 3,
                 divergence_factor: float = 100.0) -> None:
        if not 0.0 < target_accuracy < 1.0:
            raise ValueError("target_accuracy must be in (0, 1)")
        self.inner_solver = inner_solver
        self.target_accuracy = float(target_accuracy)
        self.precision = precision if precision is not None else PrecisionContext()
        self.track_communication = bool(track_communication)
        self.stagnation_iterations = int(stagnation_iterations)
        self.divergence_factor = float(divergence_factor)
        # structured operators pass through matrix-free: the residual updates
        # and scaled residuals only ever apply ``A @ x``.
        inner_matrix = inner_solver.matrix
        self.matrix = (inner_matrix if is_linear_operator(inner_matrix)
                       else np.asarray(inner_matrix, dtype=float))
        self.kappa = float(kappa) if kappa is not None else self._infer_kappa()
        self.epsilon_l = float(epsilon_l) if epsilon_l is not None else self._infer_epsilon_l()
        self.iteration_bound = self._compute_bound()
        if max_iterations is not None:
            self.max_iterations = int(max_iterations)
        elif np.isfinite(self.iteration_bound):
            self.max_iterations = int(2 * self.iteration_bound + 5)
        else:
            self.max_iterations = 50

    # ------------------------------------------------------------------ #
    def _infer_kappa(self) -> float:
        solver_kappa = getattr(self.inner_solver, "kappa", None)
        if solver_kappa is not None and np.isfinite(solver_kappa):
            return float(solver_kappa)
        return condition_number(self.matrix)

    def _infer_epsilon_l(self) -> float:
        describe = getattr(self.inner_solver, "describe", None)
        if callable(describe):
            info = describe()
            achieved = info.get("achieved_epsilon_l")
            if achieved is not None and np.isfinite(achieved) and achieved > 0:
                return float(achieved)
        nominal = getattr(self.inner_solver, "epsilon_l", None)
        if nominal is not None and np.isfinite(nominal) and nominal > 0:
            return float(nominal)
        return float("nan")

    def _compute_bound(self) -> float:
        if not np.isfinite(self.epsilon_l) or self.epsilon_l <= 0:
            return float("nan")
        if contraction_factor(self.epsilon_l, self.kappa) >= 1.0:
            return float("inf")
        return float(iteration_bound(self.target_accuracy, self.epsilon_l, self.kappa))

    def _predicted(self, index: int) -> float:
        if not np.isfinite(self.epsilon_l) or self.epsilon_l <= 0:
            return float("nan")
        rho = contraction_factor(self.epsilon_l, self.kappa)
        return float(rho ** (index + 1))

    # ------------------------------------------------------------------ #
    def _setup_communication(self, trace: CommunicationTrace, rhs_length: int) -> None:
        info = self.inner_solver.describe() if hasattr(self.inner_solver, "describe") else {}
        degree = int(info.get("polynomial_degree", 0) or 0)
        block = getattr(getattr(self.inner_solver, "backend", None), "block", None)
        if block is not None:
            trace.add_circuit_upload(0, "BE(A†)", self._block_encoding_gate_count(block),
                                     "block-encoding circuit of A†")
        elif degree > 0:
            # ideal backends carry no explicit circuit; account for a compiled
            # dense block-encoding of the same dimension (O(4^n) gates).
            trace.add_circuit_upload(0, "BE(A†)", 2 * rhs_length**2,
                                     "block-encoding circuit of A† (estimated)")
        if degree > 0:
            trace.add_vector_upload(0, "Φ", degree, "QSVT phase factors")
        trace.add_circuit_upload(0, "SP(b)", rhs_length,
                                 "state preparation of the right-hand side")

    @staticmethod
    def _block_encoding_gate_count(block) -> int:
        """Size (in elementary gates) of the compiled block-encoding circuit.

        Dense unitary blocks are expanded through the fault-tolerant resource
        model so the upload size reflects a compiled circuit rather than the
        single opaque gate the simulator applies.
        """
        from ..quantum.resources import estimate_circuit_resources

        try:
            circuit = block.circuit()
            resources = estimate_circuit_resources(circuit)
            gates = resources.cnot_count + resources.rotation_count + resources.explicit_t_count
            return int(max(gates, len(circuit), 1))
        except Exception:  # pragma: no cover - defensive: exotic encodings
            return 1

    # ------------------------------------------------------------------ #
    def solve(self, rhs, *, x_true=None) -> RefinementResult:
        """Run Algorithm 2 on ``A x = rhs`` and return the full history."""
        b = as_vector(rhs, name="rhs").astype(float)
        if b.shape[0] != self.matrix.shape[0]:
            raise ValueError("right-hand side length does not match the matrix")
        norm_b = np.linalg.norm(b)
        if norm_b == 0.0:
            raise ValueError("the right-hand side must be nonzero")
        reference = None if x_true is None else as_vector(x_true, name="x_true").astype(float)

        trace = CommunicationTrace() if self.track_communication else None
        if trace is not None:
            self._setup_communication(trace, b.shape[0])

        history: list[RefinementIteration] = []
        total_calls = 0

        # ---- initial solve x_0 (step 0) --------------------------------- #
        start = time.perf_counter()
        with obs_span("refinement_iteration", iteration=0):
            record = self.inner_solver.solve(b)
        elapsed = time.perf_counter() - start
        x = self.precision.round_working(record.x)
        total_calls += record.block_encoding_calls
        omega = scaled_residual(self.matrix, x, b)
        history.append(RefinementIteration(
            index=0, scaled_residual=float(omega), predicted_residual=self._predicted(0),
            forward_error=self._forward_error(reference, x),
            correction_norm=float(np.linalg.norm(record.x)),
            cumulative_block_encoding_calls=total_calls, wall_time=elapsed))
        if trace is not None:
            trace.add_solution_download(0, "x_0", b.shape[0], "initial QSVT solution")

        best_omega = omega
        stagnation = 0
        converged = omega <= self.target_accuracy
        iteration = 0
        floor = limiting_accuracy(self.precision.u, self.kappa)

        # ---- refinement loop -------------------------------------------- #
        while not converged and iteration < self.max_iterations:
            iteration += 1
            start = time.perf_counter()
            with obs_span("refinement_iteration", iteration=iteration):
                residual = self.precision.residual_of(self.matrix, x, b)
                correction_record = self.inner_solver.solve(residual)
                x = self.precision.round_working(x + correction_record.x)
            elapsed = time.perf_counter() - start
            total_calls += correction_record.block_encoding_calls
            omega = scaled_residual(self.matrix, x, b)
            history.append(RefinementIteration(
                index=iteration, scaled_residual=float(omega),
                predicted_residual=self._predicted(iteration),
                forward_error=self._forward_error(reference, x),
                correction_norm=float(np.linalg.norm(correction_record.x)),
                cumulative_block_encoding_calls=total_calls, wall_time=elapsed))
            if trace is not None:
                trace.add_circuit_upload(iteration, f"SP(r_{iteration})", b.shape[0],
                                         "state preparation of the residual")
                trace.add_solution_download(iteration, f"x_{iteration}", b.shape[0],
                                            "refined solution sample")
            converged = omega <= self.target_accuracy
            if omega < best_omega * (1.0 - 1e-3):
                best_omega = omega
                stagnation = 0
            else:
                stagnation += 1
            if not converged and omega > self.divergence_factor * max(best_omega, floor):
                break
            if not converged and stagnation >= self.stagnation_iterations:
                break

        return RefinementResult(
            x=x, converged=bool(converged), iterations=iteration,
            target_accuracy=self.target_accuracy, history=history,
            iteration_bound=self.iteration_bound, epsilon_l=self.epsilon_l,
            kappa=self.kappa, total_block_encoding_calls=total_calls,
            communication=trace,
            solver_info=(self.inner_solver.describe()
                         if hasattr(self.inner_solver, "describe") else {}),
        )

    # ------------------------------------------------------------------ #
    # batched refinement
    # ------------------------------------------------------------------ #
    def _inner_solve_batch(self, rhs_stack: np.ndarray) -> list:
        """Batch the inner solves when the solver supports it (one fused-plan
        sweep per iteration on the circuit backend), looping otherwise."""
        solve_batch = getattr(self.inner_solver, "solve_batch", None)
        if callable(solve_batch):
            return solve_batch(rhs_stack)
        return [self.inner_solver.solve(rhs_stack[i])
                for i in range(rhs_stack.shape[0])]

    def solve_batch(self, rhs_batch, *, x_true=None) -> list[RefinementResult]:
        """Run Algorithm 2 on ``B`` independent right-hand sides at once.

        All systems share the same matrix and compiled synthesis, so the
        residual solves of the refinements are *batched*: every iteration
        stacks the residuals of the still-active systems and answers them
        through the inner solver's ``solve_batch`` — one fused-plan circuit
        sweep per iteration for the whole batch (see
        :meth:`repro.core.qsvt_solver.QSVTLinearSolver.solve_batch`) instead
        of ``B`` sweeps.  Each system keeps its own convergence, stagnation
        and divergence bookkeeping and drops out of the batch as soon as it
        finishes; one :class:`~repro.core.results.RefinementResult` is
        returned per row, equivalent to ``B`` independent :meth:`solve`
        calls.

        Parameters
        ----------
        rhs_batch:
            Array-like of shape ``(B, N)``.
        x_true:
            Optional ``(B, N)`` stack of reference solutions for forward
            errors.
        """
        batch = np.atleast_2d(np.asarray(rhs_batch, dtype=float))
        if batch.shape[1] != self.matrix.shape[0]:
            raise ValueError("right-hand side length does not match the matrix")
        size = batch.shape[0]
        norms = np.linalg.norm(batch, axis=1)
        if np.any(norms == 0.0):
            raise ValueError("every right-hand side must be nonzero")
        if x_true is None:
            references = [None] * size
        else:
            refs = np.atleast_2d(np.asarray(x_true, dtype=float))
            if refs.shape != batch.shape:
                raise ValueError("x_true must match the shape of rhs_batch")
            references = [refs[i] for i in range(size)]

        traces = [CommunicationTrace() if self.track_communication else None
                  for _ in range(size)]
        for i, trace in enumerate(traces):
            if trace is not None:
                self._setup_communication(trace, batch.shape[1])

        histories: list[list[RefinementIteration]] = [[] for _ in range(size)]
        total_calls = [0] * size
        floor = limiting_accuracy(self.precision.u, self.kappa)

        # ---- initial solves x_0 (one batched sweep) ---------------------- #
        start = time.perf_counter()
        with obs_span("refinement_iteration", iteration=0, active=size):
            records = self._inner_solve_batch(batch)
        elapsed = (time.perf_counter() - start) / size
        xs: list[np.ndarray] = []
        omegas = np.empty(size)
        for i, record in enumerate(records):
            x = self.precision.round_working(record.x)
            xs.append(x)
            total_calls[i] += record.block_encoding_calls
            omegas[i] = scaled_residual(self.matrix, x, batch[i])
            histories[i].append(RefinementIteration(
                index=0, scaled_residual=float(omegas[i]),
                predicted_residual=self._predicted(0),
                forward_error=self._forward_error(references[i], x),
                correction_norm=float(np.linalg.norm(record.x)),
                cumulative_block_encoding_calls=total_calls[i],
                wall_time=elapsed))
            if traces[i] is not None:
                traces[i].add_solution_download(0, "x_0", batch.shape[1],
                                                "initial QSVT solution")

        best_omegas = omegas.copy()
        stagnations = [0] * size
        converged = [bool(omegas[i] <= self.target_accuracy) for i in range(size)]
        done = list(converged)
        iterations = [0] * size

        # ---- refinement loop: one batched residual solve per iteration -- #
        iteration = 0
        while not all(done) and iteration < self.max_iterations:
            iteration += 1
            active = [i for i in range(size) if not done[i]]
            start = time.perf_counter()
            with obs_span("refinement_iteration", iteration=iteration,
                          active=len(active)):
                residuals = np.stack([
                    self.precision.residual_of(self.matrix, xs[i], batch[i])
                    for i in active])
                correction_records = self._inner_solve_batch(residuals)
            elapsed = (time.perf_counter() - start) / len(active)
            for i, record in zip(active, correction_records):
                iterations[i] = iteration
                x = self.precision.round_working(xs[i] + record.x)
                xs[i] = x
                total_calls[i] += record.block_encoding_calls
                omega = scaled_residual(self.matrix, x, batch[i])
                omegas[i] = omega
                histories[i].append(RefinementIteration(
                    index=iteration, scaled_residual=float(omega),
                    predicted_residual=self._predicted(iteration),
                    forward_error=self._forward_error(references[i], x),
                    correction_norm=float(np.linalg.norm(record.x)),
                    cumulative_block_encoding_calls=total_calls[i],
                    wall_time=elapsed))
                if traces[i] is not None:
                    traces[i].add_circuit_upload(
                        iteration, f"SP(r_{iteration})", batch.shape[1],
                        "state preparation of the residual")
                    traces[i].add_solution_download(
                        iteration, f"x_{iteration}", batch.shape[1],
                        "refined solution sample")
                converged[i] = omega <= self.target_accuracy
                if omega < best_omegas[i] * (1.0 - 1e-3):
                    best_omegas[i] = omega
                    stagnations[i] = 0
                else:
                    stagnations[i] += 1
                if converged[i]:
                    done[i] = True
                elif omega > self.divergence_factor * max(best_omegas[i], floor):
                    done[i] = True
                elif stagnations[i] >= self.stagnation_iterations:
                    done[i] = True

        solver_info = (self.inner_solver.describe()
                       if hasattr(self.inner_solver, "describe") else {})
        return [
            RefinementResult(
                x=xs[i], converged=bool(converged[i]), iterations=iterations[i],
                target_accuracy=self.target_accuracy, history=histories[i],
                iteration_bound=self.iteration_bound, epsilon_l=self.epsilon_l,
                kappa=self.kappa, total_block_encoding_calls=total_calls[i],
                communication=traces[i], solver_info=solver_info)
            for i in range(size)
        ]

    @staticmethod
    def _forward_error(reference, x) -> float:
        if reference is None:
            return float("nan")
        return float(relative_forward_error(reference, x))


def refine(matrix, rhs, *, epsilon_l: float = 1e-2, target_accuracy: float = 1e-10,
           backend: str = "auto", x_true=None, **kwargs) -> RefinementResult:
    """One-call convenience API: build the QSVT solver and refine it.

    Equivalent to constructing a
    :class:`~repro.core.qsvt_solver.QSVTLinearSolver` followed by a
    :class:`MixedPrecisionRefinement`; the keyword arguments are forwarded to
    the refinement driver.
    """
    from .qsvt_solver import QSVTLinearSolver

    solver = QSVTLinearSolver(matrix, epsilon_l=epsilon_l, backend=backend)
    driver = MixedPrecisionRefinement(solver, target_accuracy=target_accuracy, **kwargs)
    return driver.solve(rhs, x_true=x_true)
