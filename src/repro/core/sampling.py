"""Measurement read-out models.

The QSVT returns its solution as a quantum state; estimating the ``N``
amplitudes to accuracy ``ε`` requires ``O(1/ε²)`` measurement samples
(Sec. III-C1 of the paper).  Reaching the ``ω ≈ 1e-11`` residuals of Fig. 3 by
sampling alone is therefore impossible — like the paper's own myQLM
experiments, the default read-out is the exact state vector.  The alternative
models below are used by the shot-noise ablation (A5 of DESIGN.md) to study
the ``#samples`` row of Table I empirically:

* ``"exact"`` — return the state amplitudes unchanged;
* ``"gaussian"`` — add i.i.d. Gaussian noise of standard deviation
  ``1/(2√shots)`` per amplitude, the asymptotic error of amplitude estimation
  from ``shots`` repetitions;
* ``"multinomial"`` — draw a multinomial sample of the measurement
  distribution and rebuild magnitudes from the empirical frequencies, keeping
  the signs of the exact amplitudes (sign read-out would need amplitude
  estimation with a reference state; see README, "limitations").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils import as_generator

__all__ = ["SamplingModel"]

_MODES = ("exact", "gaussian", "multinomial")


@dataclass
class SamplingModel:
    """Configuration of the solution read-out.

    Parameters
    ----------
    mode:
        One of ``"exact"``, ``"gaussian"``, ``"multinomial"``.
    shots:
        Number of measurement repetitions (ignored in ``"exact"`` mode).
    rng:
        Seed or generator used for the stochastic modes.
    """

    mode: str = "exact"
    shots: int = 10_000
    rng: object = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown sampling mode {self.mode!r}; choose from {_MODES}")
        if self.mode != "exact" and self.shots <= 0:
            raise ValueError("shots must be positive for stochastic read-out")
        # materialise the generator once so repeated read-outs draw fresh noise
        # even when the model was configured with an integer seed.
        self.rng = as_generator(self.rng) if self.mode != "exact" else self.rng

    # ------------------------------------------------------------------ #
    @property
    def is_exact(self) -> bool:
        """True when the read-out adds no statistical noise."""
        return self.mode == "exact"

    def shots_used(self) -> int:
        """Shots consumed by one read-out (0 in exact mode)."""
        return 0 if self.is_exact else int(self.shots)

    @staticmethod
    def shots_for_accuracy(epsilon: float, *, constant: float = 1.0) -> int:
        """The ``O(1/ε²)`` sample count of Table I (with an explicit constant)."""
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        return int(np.ceil(constant / epsilon**2))

    # ------------------------------------------------------------------ #
    def read_out(self, direction: np.ndarray) -> np.ndarray:
        """Apply the read-out model to a unit direction vector and re-normalise."""
        vec = np.asarray(direction, dtype=float).reshape(-1)
        norm = np.linalg.norm(vec)
        if norm == 0.0:
            raise ZeroDivisionError("cannot read out a zero vector")
        vec = vec / norm
        if self.is_exact:
            return vec
        gen = as_generator(self.rng)
        if self.mode == "gaussian":
            sigma = 1.0 / (2.0 * np.sqrt(self.shots))
            noisy = vec + gen.normal(0.0, sigma, size=vec.shape)
        else:  # multinomial
            probabilities = vec**2
            probabilities = probabilities / probabilities.sum()
            counts = gen.multinomial(self.shots, probabilities)
            magnitudes = np.sqrt(counts / self.shots)
            noisy = np.sign(vec) * magnitudes
        out_norm = np.linalg.norm(noisy)
        if out_norm == 0.0:
            return vec
        return noisy / out_norm
