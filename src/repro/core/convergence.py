"""Convergence theory of the mixed-precision refinement (Theorem III.1).

With an inner solver of relative accuracy ``ε_l`` and a matrix of condition
number ``κ`` such that ``ε_l κ < 1``, the scaled residual after ``i``
refinement iterations satisfies ``||r_i|| ≤ (ε_l κ)^{i+1} ||b||`` and the
number of iterations needed to reach ``ω ≤ ε`` is bounded by
``⌈log ε / log(ε_l κ)⌉``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "contraction_factor",
    "is_convergent",
    "iteration_bound",
    "predicted_scaled_residuals",
    "limiting_accuracy",
]


def contraction_factor(epsilon_l: float, kappa: float) -> float:
    """Per-iteration contraction ``ε_l κ`` of the scaled residual."""
    if epsilon_l <= 0 or kappa < 1:
        raise ValueError("epsilon_l must be positive and kappa >= 1")
    return float(epsilon_l) * float(kappa)


def is_convergent(epsilon_l: float, kappa: float) -> bool:
    """Whether Theorem III.1 guarantees convergence (``ε_l κ < 1``)."""
    return contraction_factor(epsilon_l, kappa) < 1.0


def iteration_bound(epsilon: float, epsilon_l: float, kappa: float) -> int:
    """Upper bound ``⌈log ε / log(ε_l κ)⌉`` on the number of refinement iterations.

    Raises ``ValueError`` when the convergence condition ``ε_l κ < 1`` fails.
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must be in (0, 1)")
    rho = contraction_factor(epsilon_l, kappa)
    if rho >= 1.0:
        raise ValueError(
            f"refinement does not converge: epsilon_l * kappa = {rho:.3g} >= 1")
    ratio = np.log(epsilon) / np.log(rho)
    # guard against ratios like 5.000000000000001 produced by floating-point
    # round-off in the logarithms, which would inflate the bound by one.
    return int(np.ceil(ratio - 1e-9))


def predicted_scaled_residuals(num_iterations: int, epsilon_l: float, kappa: float
                               ) -> np.ndarray:
    """Theoretical envelope ``(ε_l κ)^{i+1}`` for ``i = 0 .. num_iterations``.

    Index 0 corresponds to the initial solve ``x_0`` (whose scaled residual is
    bounded by ``ε_l κ``), matching the convention of
    :class:`repro.core.results.RefinementResult`.
    """
    if num_iterations < 0:
        raise ValueError("num_iterations must be non-negative")
    rho = contraction_factor(epsilon_l, kappa)
    powers = np.arange(1, num_iterations + 2, dtype=float)
    return rho**powers


def limiting_accuracy(working_unit_roundoff: float, kappa: float,
                      *, constant: float = 4.0) -> float:
    """Heuristic floor ``c·u·κ`` on the reachable scaled residual.

    Classical iterative-refinement analysis (Sec. II-B) shows the limiting
    accuracy is governed by the working precision ``u`` used for residuals and
    updates; the refinement driver uses this value to warn when the requested
    target is below what the chosen precision can deliver.
    """
    return float(constant) * float(working_unit_roundoff) * float(kappa)
