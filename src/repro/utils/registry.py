"""Generic name → value registry with guard rails.

Three subsystems grew the same pattern independently — the engine's scenario
registry, the cost model's κ growth models and the problem suite's
``PROBLEM_FAMILIES`` — each re-implementing the duplicate guard, the
``overwrite=True`` escape hatch, unregistration and the difflib "did you
mean" suggestions.  :class:`Registry` is that pattern once: a small,
read-mostly mapping whose error messages keep benchmark labels honest (two
families silently shadowing each other is how results stop meaning what
their labels say).
"""

from __future__ import annotations

import difflib
from collections.abc import Mapping

__all__ = ["Registry"]


class Registry(Mapping):
    """A guarded ``name -> value`` mapping.

    Parameters
    ----------
    kind:
        Human-readable noun used in error messages (``"scenario"``,
        ``"kappa model"``, ``"problem family"``).

    Behaviour
    ---------
    * :meth:`register` refuses duplicates unless ``overwrite=True``;
    * :meth:`unregister` removes an entry and reports whether it existed;
    * lookups (``registry[name]``) raise :class:`KeyError` with close-match
      suggestions and the full sorted name list;
    * the full :class:`~collections.abc.Mapping` protocol works (``in``,
      ``len``, iteration, ``.items()``), iterating in sorted-name order.
    """

    def __init__(self, kind: str) -> None:
        self.kind = str(kind)
        self._items: dict[str, object] = {}

    # ------------------------------------------------------------------ #
    def register(self, name: str, value=None, *, overwrite: bool = False):
        """Store ``value`` under ``name``; usable directly or as a decorator.

        Raises :class:`ValueError` when ``name`` is taken and ``overwrite``
        is false.  Returns the value (decorator-friendly).
        """
        if value is None:
            def decorator(fn):
                return self.register(name, fn, overwrite=overwrite)

            return decorator
        if not overwrite and name in self._items:
            raise ValueError(
                f"{self.kind} {name!r} is already registered; pass "
                f"overwrite=True to replace it (or unregister {name!r} first)")
        self._items[name] = value
        return value

    def unregister(self, name: str) -> bool:
        """Remove ``name``; returns whether it existed."""
        return self._items.pop(name, None) is not None

    # ------------------------------------------------------------------ #
    def names(self) -> list[str]:
        """Sorted names of every registered entry."""
        return sorted(self._items)

    def __getitem__(self, name: str):
        try:
            return self._items[name]
        except KeyError:
            close = difflib.get_close_matches(name, self.names(), n=3,
                                              cutoff=0.5)
            hint = (f"; did you mean {' or '.join(repr(m) for m in close)}?"
                    if close else "")
            raise KeyError(
                f"unknown {self.kind} {name!r}{hint} "
                f"(registered: {self.names()})") from None

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, name) -> bool:
        return name in self._items

    def __eq__(self, other):
        if isinstance(other, Mapping):
            return dict(self._items) == dict(other)
        return NotImplemented

    __hash__ = None  # mutable mapping semantics

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry(kind={self.kind!r}, names={self.names()})"
