"""Atomic file writes shared by the persistent stores.

Both on-disk caches (the synthesis store and the autotune profile store)
must never let a concurrent reader — or a crash mid-write — observe a
partial file: entries are serialised to a temporary file in the target
directory and renamed into place, which is atomic on POSIX filesystems.
"""

from __future__ import annotations

import os
import pathlib
import tempfile

__all__ = ["atomic_write"]


def atomic_write(path: str | os.PathLike, data: bytes | str, *,
                 encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``data`` (bytes or text).

    The parent directory is created if needed; the temporary file lives in
    that same directory so the final ``os.replace`` never crosses a
    filesystem boundary.  On any failure the temporary file is removed and
    the original ``path`` is left untouched.
    """
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
    try:
        if isinstance(data, str):
            with os.fdopen(fd, "w", encoding=encoding) as handle:
                handle.write(data)
        else:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
