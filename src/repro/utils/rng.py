"""Random-number-generator helpers.

Every stochastic routine of the library (matrix generators, shot sampling,
VQLS initialisation, ...) accepts a ``rng`` argument that may be ``None``, an
integer seed or an already constructed :class:`numpy.random.Generator`.  The
helpers below normalise those inputs so results are reproducible whenever a
seed is supplied.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn_generators"]


def as_generator(rng=None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh non-deterministic generator), an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator which is
        returned unchanged.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_generators(rng, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Useful to give each worker of a parameter sweep its own stream while the
    sweep as a whole remains reproducible from a single seed.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = as_generator(rng)
    seeds = parent.bit_generator.seed_seq.spawn(count) if hasattr(
        parent.bit_generator, "seed_seq") and parent.bit_generator.seed_seq is not None else [
        np.random.SeedSequence(int(parent.integers(0, 2**63 - 1))) for _ in range(count)
    ]
    return [np.random.default_rng(s) for s in seeds]
