"""Content fingerprints for numpy arrays.

The compile-once / solve-many pattern of Algorithm 2 (and the engine's
:class:`~repro.engine.cache.CompiledSolverCache`) needs a cheap, collision-safe
way to decide whether two matrices are *the same problem*: synthesis artefacts
(block-encoding, inverse polynomial, QSP phases) may be reused only while the
matrix bytes are unchanged.  A SHA-1 over dtype, shape and raw bytes is exact
(no tolerance games), costs ~microseconds for the paper-scale ``N = 16``
systems, and doubles as the staleness guard of
:meth:`repro.core.qsvt_solver.QSVTLinearSolver.solve` — mutating a matrix in
place after synthesis is detected instead of silently producing wrong answers.

The hash is taken over a *canonical* form of the array, so that numerically
equal matrices always share one fingerprint regardless of how they are laid
out in memory:

* non-contiguous views and Fortran-ordered arrays are rewritten to C order
  (``A.T.copy().T`` and ``A`` must hit the same cache entry);
* non-native byte orders are swapped to the native one (an ``>f8`` array
  loaded from a file equals its ``<f8`` twin element-wise);
* negative zeros are normalised to ``+0.0`` for float and complex dtypes —
  ``-0.0 == 0.0`` but their bytes differ, and time-stepping chains routinely
  produce signed zeros in otherwise identical operators.

Dtype and shape still distinguish: ``float32`` vs ``float64`` data, or a
``(2, 8)`` vs ``(4, 4)`` view of the same buffer, are different problems.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["matrix_fingerprint"]


#: elements scanned per block while looking for signed zeros (bounds the
#: boolean temporaries to ~1 MB and short-circuits on the first hit).
_SCAN_BLOCK = 1 << 20


def _block_has_negative_zero(block: np.ndarray) -> bool:
    if np.issubdtype(block.dtype, np.complexfloating):
        return bool(np.any(((block.real == 0) & np.signbit(block.real))
                           | ((block.imag == 0) & np.signbit(block.imag))))
    return bool(np.any((block == 0) & np.signbit(block)))


def _has_negative_zero(arr: np.ndarray) -> bool:
    """Chunked short-circuiting scan (``arr`` must be contiguous)."""
    flat = arr.reshape(-1)
    return any(_block_has_negative_zero(flat[start:start + _SCAN_BLOCK])
               for start in range(0, flat.size, _SCAN_BLOCK))


def _canonicalize(array) -> np.ndarray:
    """Layout-independent form of ``array`` (see module docstring)."""
    arr = np.asarray(array)
    if arr.dtype.hasobject:
        raise TypeError(
            "matrix_fingerprint requires a numeric array; object dtypes have "
            "no stable byte representation")
    if not arr.dtype.isnative:
        arr = arr.astype(arr.dtype.newbyteorder("="))
    arr = np.ascontiguousarray(arr)
    if np.issubdtype(arr.dtype, np.floating) or np.issubdtype(
            arr.dtype, np.complexfloating):
        # adding zero maps -0.0 to +0.0 (for complex: in both components)
        # while leaving every other value, including NaNs, bit-compatible.
        # This sits on hot paths (staleness checks, cache lookups), so the
        # full-copy pass only runs when a signed zero is actually present —
        # the common canonical array costs a blockwise read-only scan.
        if _has_negative_zero(arr):
            arr = arr + arr.dtype.type(0)
    return arr


def _update_with_array(digest, arr: np.ndarray) -> None:
    digest.update(str(arr.dtype).encode())
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())


def matrix_fingerprint(array) -> str:
    """Hex digest identifying the exact contents of ``array``.

    Two arrays share a fingerprint iff they have the same dtype kind/size,
    the same shape and element-wise identical canonical bytes — the right
    equivalence for reusing compiled solver artefacts.  Memory layout
    (C/Fortran order, strides), byte order and zero signs do not matter.

    **Structured operators** (anything exposing ``fingerprint_parts()``, see
    :class:`repro.linalg.operators.StructuredOperator`) are hashed over their
    structural metadata plus their storage arrays *without densifying* —
    ``O(nnz)`` work instead of ``O(N²)``.  The structure tag is part of the
    hash, so a banded, a CSR and a dense representation of numerically equal
    matrices are three distinct compiled problems (their synthesis payloads
    genuinely differ).
    """
    parts = getattr(array, "fingerprint_parts", None)
    if callable(parts):
        digest = hashlib.sha1()
        for label, component in parts():
            digest.update(label.encode())
            if component is not None:
                _update_with_array(digest, _canonicalize(component))
        return digest.hexdigest()
    arr = _canonicalize(array)
    digest = hashlib.sha1()
    _update_with_array(digest, arr)
    return digest.hexdigest()
