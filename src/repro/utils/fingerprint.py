"""Content fingerprints for numpy arrays.

The compile-once / solve-many pattern of Algorithm 2 (and the engine's
:class:`~repro.engine.cache.CompiledSolverCache`) needs a cheap, collision-safe
way to decide whether two matrices are *the same problem*: synthesis artefacts
(block-encoding, inverse polynomial, QSP phases) may be reused only while the
matrix bytes are unchanged.  A SHA-1 over dtype, shape and raw bytes is exact
(no tolerance games), costs ~microseconds for the paper-scale ``N = 16``
systems, and doubles as the staleness guard of
:meth:`repro.core.qsvt_solver.QSVTLinearSolver.solve` — mutating a matrix in
place after synthesis is detected instead of silently producing wrong answers.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["matrix_fingerprint"]


def matrix_fingerprint(array) -> str:
    """Hex digest identifying the exact contents of ``array``.

    Two arrays share a fingerprint iff they have the same dtype, shape and
    bytes — the right equivalence for reusing compiled solver artefacts.
    """
    arr = np.ascontiguousarray(np.asarray(array))
    digest = hashlib.sha1()
    digest.update(str(arr.dtype).encode())
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()
