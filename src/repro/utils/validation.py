"""Input validation helpers shared by the whole library.

The quantum sub-packages work with matrices whose dimension is a power of two
(``N = 2**n`` with ``n`` data qubits) and with unit-norm state vectors, so most
of the checks gathered here are about shapes, power-of-two dimensions and
basic structural properties (hermiticity, unitarity).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DimensionError

__all__ = [
    "as_matrix",
    "as_vector",
    "check_square",
    "check_system",
    "is_linear_operator",
    "payload_nbytes",
    "is_power_of_two",
    "check_power_of_two",
    "num_qubits_for_dimension",
    "is_hermitian",
    "is_unitary",
]


def is_linear_operator(obj) -> bool:
    """True when ``obj`` is a matrix-free linear operator, not an ndarray.

    Duck-typed on the :class:`repro.linalg.operators.StructuredOperator`
    protocol (``matvec`` + ``shape``) so that :mod:`repro.utils` — which must
    not import the rest of the package — can branch without the class.
    """
    return (not isinstance(obj, np.ndarray)
            and callable(getattr(obj, "matvec", None))
            and hasattr(obj, "shape"))


def payload_nbytes(matrix) -> int:
    """Resident bytes of a matrix: ``nnz_bytes()`` for structured operators,
    ``nbytes`` for dense arrays.  The single byte-accounting rule used by the
    compiled-solver cache, the backends and the shared-memory registry."""
    nnz_bytes = getattr(matrix, "nnz_bytes", None)
    if callable(nnz_bytes):
        return int(nnz_bytes())
    return int(np.asarray(matrix).nbytes)


def as_matrix(a, *, dtype=None, name: str = "matrix") -> np.ndarray:
    """Return ``a`` as a 2-D numpy array, raising :class:`DimensionError` otherwise.

    Parameters
    ----------
    a:
        Array-like object expected to be two-dimensional.
    dtype:
        Optional dtype passed to :func:`numpy.asarray`.
    name:
        Name used in error messages.
    """
    arr = np.asarray(a, dtype=dtype)
    if arr.ndim != 2:
        raise DimensionError(f"{name} must be 2-dimensional, got ndim={arr.ndim}")
    return arr


def as_vector(v, *, dtype=None, name: str = "vector") -> np.ndarray:
    """Return ``v`` as a 1-D numpy array.

    Column vectors of shape ``(N, 1)`` are flattened; anything else that is not
    one-dimensional raises :class:`DimensionError`.
    """
    arr = np.asarray(v, dtype=dtype)
    if arr.ndim == 2 and arr.shape[1] == 1:
        arr = arr[:, 0]
    if arr.ndim != 1:
        raise DimensionError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    return arr


def check_square(a, *, name: str = "matrix"):
    """Validate that ``a`` is square and return it (as ndarray when dense).

    Matrix-free linear operators (see :func:`is_linear_operator`) are passed
    through untouched after a shape check — densifying them here would defeat
    their purpose.
    """
    if is_linear_operator(a):
        if len(a.shape) != 2 or a.shape[0] != a.shape[1]:
            raise DimensionError(f"{name} must be square, got shape {a.shape}")
        return a
    arr = as_matrix(a, name=name)
    if arr.shape[0] != arr.shape[1]:
        raise DimensionError(f"{name} must be square, got shape {arr.shape}")
    return arr


def check_system(a, b):
    """Validate a linear system ``A x = b`` and return ``(A, b)``.

    ``A`` must be square (dense ndarray or matrix-free operator) and ``b``
    must be a vector whose length matches the number of rows of ``A``.
    """
    mat = check_square(a, name="A")
    rhs = as_vector(b, name="b")
    if rhs.shape[0] != mat.shape[0]:
        raise DimensionError(
            f"right-hand side has length {rhs.shape[0]} but A is {mat.shape[0]}x{mat.shape[1]}"
        )
    return mat, rhs


def is_power_of_two(n: int) -> bool:
    """Return ``True`` when ``n`` is a positive power of two (1, 2, 4, 8, ...)."""
    return isinstance(n, (int, np.integer)) and n > 0 and (n & (n - 1)) == 0


def check_power_of_two(n: int, *, name: str = "dimension") -> int:
    """Raise :class:`DimensionError` unless ``n`` is a power of two."""
    if not is_power_of_two(n):
        raise DimensionError(f"{name} must be a power of two, got {n}")
    return int(n)


def num_qubits_for_dimension(n: int) -> int:
    """Number of qubits needed to index ``n`` basis states (``n`` must be 2**k)."""
    check_power_of_two(n)
    return int(n).bit_length() - 1


def is_hermitian(a, *, atol: float = 1e-12) -> bool:
    """Return ``True`` when ``a`` equals its conjugate transpose within ``atol``."""
    arr = as_matrix(a)
    if arr.shape[0] != arr.shape[1]:
        return False
    return bool(np.allclose(arr, arr.conj().T, atol=atol))


def is_unitary(a, *, atol: float = 1e-10) -> bool:
    """Return ``True`` when ``a`` is unitary within ``atol``."""
    arr = as_matrix(a)
    if arr.shape[0] != arr.shape[1]:
        return False
    eye = np.eye(arr.shape[0])
    return bool(np.allclose(arr @ arr.conj().T, eye, atol=atol))
