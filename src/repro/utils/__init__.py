"""Small shared helpers (validation, RNG management, timing).

These utilities are intentionally dependency-free (numpy only) and are used by
every other sub-package; they never import from the rest of :mod:`repro` to
avoid circular imports.
"""

from .validation import (
    as_matrix,
    as_vector,
    check_power_of_two,
    check_square,
    check_system,
    is_hermitian,
    is_linear_operator,
    is_power_of_two,
    is_unitary,
    num_qubits_for_dimension,
    payload_nbytes,
)
from .fingerprint import matrix_fingerprint
from .io import atomic_write
from .registry import Registry
from .rng import as_generator, spawn_generators
from .timing import LatencyHistogram, Timer

__all__ = [
    "matrix_fingerprint",
    "atomic_write",
    "as_matrix",
    "as_vector",
    "check_power_of_two",
    "check_square",
    "check_system",
    "is_hermitian",
    "is_linear_operator",
    "is_power_of_two",
    "is_unitary",
    "num_qubits_for_dimension",
    "payload_nbytes",
    "Registry",
    "as_generator",
    "spawn_generators",
    "Timer",
    "LatencyHistogram",
]
