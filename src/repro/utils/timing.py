"""Lightweight wall-clock timing helper used by examples and benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer"]


@dataclass
class Timer:
    """Context manager measuring elapsed wall-clock time.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    #: elapsed seconds, populated when the ``with`` block exits.
    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._start

    def restart(self) -> None:
        """Reset the start time (useful when reusing one instance in a loop)."""
        self._start = time.perf_counter()
        self.elapsed = 0.0
