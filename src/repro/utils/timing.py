"""Wall-clock timing helpers: the :class:`Timer` context manager and the
:class:`LatencyHistogram` percentile tracker shared by the serving tier.

Every layer that reports request latencies — the coalescing
:class:`~repro.engine.aio.AsyncSolveEngine`, the serving-tier workers, the
cluster benchmark — records into a :class:`LatencyHistogram` and reads
p50/p90/p99 from its :meth:`~LatencyHistogram.summary`, so percentiles are
computed in exactly one place instead of being re-derived per consumer.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Timer", "LatencyHistogram"]


@dataclass
class Timer:
    """Context manager measuring elapsed wall-clock time.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    #: elapsed seconds, populated when the ``with`` block exits.
    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._start

    def restart(self) -> None:
        """Reset the start time (useful when reusing one instance in a loop)."""
        self._start = time.perf_counter()
        self.elapsed = 0.0


class LatencyHistogram:
    """Thread-safe duration tracker with percentile summaries.

    Samples are kept in a bounded sliding window (the most recent
    ``window`` observations) so a long-running service reports *current*
    tail latency rather than an all-of-history average, while the running
    ``count`` / ``total`` cover everything ever recorded.  Memory is
    ``O(window)`` regardless of traffic volume.

    Histograms from different processes aggregate: a worker ships
    :meth:`state` in its telemetry snapshot, and the front end folds the
    states together with :meth:`merge` (or :meth:`merged`) to read one
    *cluster-wide* p99 instead of W incomparable per-worker percentiles.

    Examples
    --------
    >>> histogram = LatencyHistogram()
    >>> for ms in (1, 2, 3, 4, 100):
    ...     histogram.record(ms / 1000.0)
    >>> histogram.summary()["count"]
    5
    >>> histogram.percentile(50) <= histogram.percentile(99)
    True
    """

    def __init__(self, window: int = 8192) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self._samples: deque[float] = deque(maxlen=int(window))
        self._lock = threading.Lock()
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        #: memoised :meth:`summary` result, dropped on every mutation —
        #: telemetry polls (stats probes, /metrics scrapes) between records
        #: re-read a dict instead of re-running ``np.percentile``.
        self._summary_cache: dict | None = None

    def record(self, seconds: float) -> None:
        """Add one observed duration (in seconds)."""
        value = float(seconds)
        with self._lock:
            self._samples.append(value)
            self._count += 1
            self._total += value
            if value > self._max:
                self._max = value
            self._summary_cache = None

    # ------------------------------------------------------------------ #
    # cross-process aggregation
    # ------------------------------------------------------------------ #
    def state(self) -> dict:
        """Serialisable snapshot (counters + window samples) for merging.

        The payload is plain JSON-able python (floats and lists), so it can
        ride a worker's telemetry snapshot across a process boundary and be
        folded into a cluster-wide histogram with :meth:`merge`.
        """
        with self._lock:
            return {"count": self._count, "total": self._total,
                    "max": self._max, "window": self._samples.maxlen,
                    "samples": list(self._samples)}

    @classmethod
    def from_state(cls, state: dict) -> "LatencyHistogram":
        """Rebuild a histogram from a :meth:`state` payload."""
        histogram = cls(window=int(state.get("window") or 8192))
        histogram._count = int(state["count"])
        histogram._total = float(state["total"])
        histogram._max = float(state["max"])
        histogram._samples.extend(float(v) for v in state["samples"])
        return histogram

    def merge(self, other: "LatencyHistogram | dict") -> "LatencyHistogram":
        """Fold another histogram (or its :meth:`state`) into this one.

        Lifetime counters add; the sample windows concatenate, the window
        growing as needed so merging W full worker windows never silently
        drops the samples a cluster-wide p99 is computed from.  Returns
        ``self`` so merges chain.
        """
        state = other.state() if isinstance(other, LatencyHistogram) else other
        with self._lock:
            needed = len(self._samples) + len(state["samples"])
            if self._samples.maxlen is not None and needed > self._samples.maxlen:
                self._samples = deque(self._samples, maxlen=needed)
            self._samples.extend(float(v) for v in state["samples"])
            self._count += int(state["count"])
            self._total += float(state["total"])
            self._max = max(self._max, float(state["max"]))
            self._summary_cache = None
        return self

    @classmethod
    def merged(cls, states) -> "LatencyHistogram":
        """One histogram folding an iterable of histograms/state payloads."""
        merged = cls()
        for state in states:
            merged.merge(state)
        return merged

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) over the sample window; 0.0 empty."""
        with self._lock:
            if not self._samples:
                return 0.0
            samples = np.fromiter(self._samples, dtype=float)
        return float(np.percentile(samples, q))

    @property
    def count(self) -> int:
        """Observations recorded over the histogram's lifetime."""
        with self._lock:
            return self._count

    def summary(self) -> dict:
        """One-stop snapshot: count, mean, p50/p90/p99, max (seconds).

        ``p50``/``p90``/``p99`` cover the sliding window (current behaviour);
        ``count`` / ``mean`` / ``max`` cover the full lifetime.  The result
        is memoised until the next :meth:`record`/:meth:`merge`, so polling
        telemetry between requests costs a dict copy, not a percentile sort.
        """
        with self._lock:
            if self._summary_cache is not None:
                return dict(self._summary_cache)
            count = self._count
            total = self._total
            maximum = self._max
            samples = (np.fromiter(self._samples, dtype=float)
                       if self._samples else None)
        if samples is None:
            summary = {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                       "p99": 0.0, "max": 0.0}
        else:
            p50, p90, p99 = (float(v) for v
                             in np.percentile(samples, (50, 90, 99)))
            summary = {"count": count, "mean": total / count, "p50": p50,
                       "p90": p90, "p99": p99, "max": maximum}
        with self._lock:
            # only memoise if no record() slipped in while computing.
            if self._summary_cache is None and self._count == count:
                self._summary_cache = summary
        return dict(summary)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.summary()
        return (f"LatencyHistogram(count={stats['count']}, "
                f"p50={stats['p50']:.6f}, p99={stats['p99']:.6f})")
