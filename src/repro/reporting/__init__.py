"""Plain-text reporting helpers used by the benchmarks and EXPERIMENTS.md."""

from .tables import format_table
from .figures import format_series, format_convergence_history

__all__ = ["format_table", "format_series", "format_convergence_history"]
