"""Text rendering of "figures" (series) for the benchmark harness.

The paper's Figures 3–5 are line plots; in a text-only environment each curve
is dumped as an aligned table of (x, y) pairs plus, for convergence histories,
a coarse logarithmic sparkline so the geometric contraction is visible at a
glance in the benchmark output.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["format_series", "format_convergence_history"]


def format_series(series: Mapping[str, Sequence[float]], *, x_label: str = "x",
                  x_values: Sequence[float] | None = None, title: str | None = None) -> str:
    """Render one or more named series sharing the same x grid."""
    names = list(series.keys())
    if not names:
        return title or "(empty series)"
    length = len(series[names[0]])
    xs = list(x_values) if x_values is not None else list(range(length))
    lines = []
    if title:
        lines.append(title)
    header = [x_label.rjust(12)] + [name.rjust(14) for name in names]
    lines.append(" ".join(header))
    for i in range(length):
        row = [f"{xs[i]:12.4g}"]
        for name in names:
            value = series[name][i] if i < len(series[name]) else float("nan")
            row.append(f"{value:14.4e}")
        lines.append(" ".join(row))
    return "\n".join(lines)


def format_convergence_history(residuals: Sequence[float], *, bound: Sequence[float] | None = None,
                               title: str | None = None, floor: float = 1e-16) -> str:
    """Render a scaled-residual history with a logarithmic sparkline."""
    lines = []
    if title:
        lines.append(title)
    lines.append(" iter |  scaled residual |   Thm III.1 bound | log10 sparkline")
    max_log = 0.0
    min_log = math.log10(max(min((r for r in residuals if r > 0), default=floor), floor))
    span = max(max_log - min_log, 1.0)
    for i, value in enumerate(residuals):
        log_value = math.log10(max(value, floor))
        bar_length = int(round(40 * (max_log - log_value) / span))
        bar = "#" * max(bar_length, 0)
        bound_text = f"{bound[i]:17.4e}" if bound is not None and i < len(bound) else " " * 17
        lines.append(f" {i:4d} | {value:16.4e} | {bound_text} | {bar}")
    return "\n".join(lines)
