"""Fixed-width text tables (the repository has no graphical output)."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table"]


def _format_value(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if 1e-3 <= magnitude < 1e6:
            return f"{value:.4g}"
        return f"{value:.3e}"
    return str(value)


def format_table(rows: Iterable[Mapping], *, columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render a list of dictionaries as a fixed-width text table.

    Parameters
    ----------
    rows:
        Iterable of mappings; missing keys are rendered as empty cells.
    columns:
        Column order (defaults to the keys of the first row).
    title:
        Optional title printed above the table.
    """
    rows = list(rows)
    if not rows:
        return title or "(empty table)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[_format_value(row.get(col, "")) for col in cols] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
