"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
that legacy editable installs (``pip install -e . --no-use-pep517``) keep
working on environments whose setuptools predates PEP 660 wheel-less editable
support (e.g. offline machines without the ``wheel`` package).
"""

from setuptools import setup

setup()
