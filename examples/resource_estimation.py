"""Resource and communication estimation for a hybrid CPU/QPU deployment.

The paper argues (Sec. III-C) that the mixed-precision scheme is attractive on
future HPC+QPU systems because (i) the expensive quantum resources scale with
the *low* accuracy ε_l and (ii) after the first solve only small payloads move
between CPU and QPU.  This example quantifies both statements for a concrete
problem:

* Table I-style cost comparison (QSVT only vs QSVT + refinement),
* fault-tolerant T-gate estimates of the block-encoding, state preparation and
  projector-phase circuits,
* the CPU↔QPU communication trace of one refined solve (Fig. 1).

Run with:  python examples/resource_estimation.py
"""

from repro import MixedPrecisionRefinement, QSVTLinearSolver
from repro.applications import random_workload
from repro.blockencoding import DilationBlockEncoding, LCUBlockEncoding
from repro.core import quantum_cost_table
from repro.quantum import estimate_circuit_resources
from repro.reporting import format_table
from repro.stateprep import prepare_state_circuit


def main() -> None:
    kappa, epsilon, epsilon_l = 10.0, 1e-10, 1e-2
    workload = random_workload(16, kappa, rng=7)

    # --- Table I ------------------------------------------------------- #
    direct, refined = quantum_cost_table(kappa, epsilon, epsilon_l)
    print(format_table([direct.as_row(), refined.as_row()],
                       title=f"Table I at kappa={kappa:g}, eps={epsilon:g}, "
                             f"eps_l={epsilon_l:g}"))
    print(f"cost advantage of the mixed-precision scheme: "
          f"{direct.total / refined.total:.2e}x\n")

    # --- gate-level resources ------------------------------------------ #
    rows = []
    for name, encoding in (("dilation BE of A†", DilationBlockEncoding(workload.matrix.T)),
                           ("Pauli-LCU BE of A†", LCUBlockEncoding(workload.matrix.T))):
        resources = estimate_circuit_resources(encoding.circuit())
        rows.append({"circuit": name, "qubits": resources.num_qubits,
                     "T count": resources.t_count, "CNOTs": resources.cnot_count,
                     "alpha": encoding.alpha})
    state_prep = prepare_state_circuit(workload.rhs, decompose=True).circuit
    sp_resources = estimate_circuit_resources(state_prep)
    rows.append({"circuit": "tree state preparation of b", "qubits": sp_resources.num_qubits,
                 "T count": sp_resources.t_count, "CNOTs": sp_resources.cnot_count,
                 "alpha": float("nan")})
    print(format_table(rows, title="fault-tolerant resources of the compiled pieces"))

    # --- communication trace (Figure 1) -------------------------------- #
    solver = QSVTLinearSolver(workload.matrix, epsilon_l=epsilon_l, backend="circuit")
    result = MixedPrecisionRefinement(solver, target_accuracy=epsilon).solve(workload.rhs)
    print("\nCPU <-> QPU communication of the refined solve (Figure 1):")
    print(result.communication.render())


if __name__ == "__main__":
    main()
