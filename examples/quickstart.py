"""Quickstart: solve a linear system with the mixed-precision hybrid solver.

This is the 60-second tour of the library:

1. generate a random system with a prescribed condition number (the Sec. IV
   setup of the paper),
2. build a :class:`~repro.core.qsvt_solver.QSVTLinearSolver` — the "QPU side":
   block-encoding of ``A†``, Eq.-(4) inverse polynomial, QSP phase factors,
3. wrap it in :class:`~repro.core.refinement.MixedPrecisionRefinement` — the
   "CPU side": residuals and updates in double precision,
4. inspect the convergence history and compare against the classical solution.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import MixedPrecisionRefinement, QSVTLinearSolver
from repro.applications import random_workload
from repro.reporting import format_convergence_history


def main() -> None:
    # 1. a 16x16 random system with condition number 10 and unit-norm rhs
    workload = random_workload(dimension=16, kappa=10.0, rng=2025)
    print(f"problem: {workload.name}  (N = {workload.dimension}, "
          f"kappa = {workload.measured_condition_number():.2f})")

    # 2. the quantum solver: one QSVT solve has (low) accuracy epsilon_l
    solver = QSVTLinearSolver(workload.matrix, epsilon_l=1e-2, backend="circuit")
    info = solver.describe()
    print(f"backend: {info['backend']}, block-encoding: {info['block_encoding']}, "
          f"polynomial degree {info['polynomial_degree']}, "
          f"achieved epsilon_l = {info['achieved_epsilon_l']:.2e}")

    single = solver.solve(workload.rhs)
    print(f"\nsingle QSVT solve: scaled residual = {single.scaled_residual:.2e} "
          f"({single.block_encoding_calls} block-encoding calls)")

    # 3. mixed-precision iterative refinement down to 1e-11
    refinement = MixedPrecisionRefinement(solver, target_accuracy=1e-11)
    result = refinement.solve(workload.rhs, x_true=workload.solution)

    # 4. results
    print(f"\nrefined solve: converged = {result.converged} in {result.iterations} "
          f"iterations (Theorem III.1 bound: {result.iteration_bound:.0f})")
    print(format_convergence_history(result.scaled_residuals,
                                     bound=result.predicted_residuals,
                                     title="\nscaled residual per iteration:"))
    error = np.linalg.norm(result.x - workload.solution) / np.linalg.norm(workload.solution)
    print(f"\nrelative forward error vs numpy.linalg.solve: {error:.2e}")
    print(f"total block-encoding calls: {result.total_block_encoding_calls}")


if __name__ == "__main__":
    main()
