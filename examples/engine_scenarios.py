"""Engine tour: batched multi-RHS solves, the compiled-solver cache, and the
parallel scenario runner.

The single-solve API (see ``quickstart.py``) answers one request at a time;
the :mod:`repro.engine` subsystem turns the same pipeline into a service:

1. ``solve_batch`` — many right-hand sides against one compiled synthesis in
   a single circuit sweep (a ``(B, 2**n)`` batched statevector);
2. ``CompiledSolverCache`` — repeated requests against the same matrix skip
   block-encoding / polynomial / phase synthesis entirely;
3. ``ScenarioRunner`` + the scenario registry — named, parameterised workload
   families fanned out across a worker pool.

Run with:  python examples/engine_scenarios.py
"""

import time

import numpy as np

from repro import CompiledSolverCache, QSVTLinearSolver, ScenarioRunner
from repro.applications import random_workload
from repro.engine import build_scenario, list_scenarios
from repro.linalg import random_rhs
from repro.utils import as_generator


def main() -> None:
    # ---- 1. batched multi-RHS solve ---------------------------------- #
    workload = random_workload(dimension=16, kappa=10.0, rng=2025)
    solver = QSVTLinearSolver(workload.matrix, epsilon_l=1e-2, backend="circuit")
    gen = as_generator(7)
    rhs_batch = np.stack([random_rhs(16, rng=gen) for _ in range(8)])

    start = time.perf_counter()
    records = solver.solve_batch(rhs_batch)
    batched = time.perf_counter() - start
    start = time.perf_counter()
    looped = [solver.solve(rhs) for rhs in rhs_batch]
    loop_time = time.perf_counter() - start
    deviation = max(float(np.max(np.abs(a.x - b.x))) for a, b in zip(records, looped))
    print(f"solve_batch: 8 right-hand sides in {batched:.3f}s "
          f"(loop: {loop_time:.3f}s, {loop_time / batched:.1f}x slower), "
          f"max deviation {deviation:.1e}")

    # ---- 2. compiled-solver cache ------------------------------------ #
    cache = CompiledSolverCache()
    start = time.perf_counter()
    cache.solver(workload.matrix, epsilon_l=1e-2, backend="circuit")
    compile_time = time.perf_counter() - start
    start = time.perf_counter()
    cache.solver(workload.matrix, epsilon_l=1e-2, backend="circuit")
    hit_time = time.perf_counter() - start
    print(f"cache: compile {compile_time:.3f}s, hit {hit_time * 1e6:.0f}us, "
          f"stats {cache.stats()}")

    # ---- 3. scenario registry + parallel runner ---------------------- #
    print("\nregistered scenarios:")
    for name, description in list_scenarios().items():
        print(f"  {name:18s} {description}")

    scenario = build_scenario("kappa-sweep", dimension=16,
                              kappas=(2.0, 10.0, 50.0), rng=1)
    runner = ScenarioRunner(mode="process")
    start = time.perf_counter()
    results = runner.run(scenario.jobs)
    elapsed = time.perf_counter() - start
    print(f"\n{scenario.name}: {len(results)} refined solves in {elapsed:.2f}s "
          f"({runner.mode} mode, {runner.max_workers} workers)")
    for result in results:
        print(f"  {result.name:18s} converged={result.converged} "
              f"iterations={result.iterations} omega={result.scaled_residual:.1e}")


if __name__ == "__main__":
    main()
