"""Engine tour: batched multi-RHS solves, the compiled-solver cache, the
parallel scenario runner — and the problem suite discovered through it.

The single-solve API (see ``quickstart.py``) answers one request at a time;
the :mod:`repro.engine` subsystem turns the same pipeline into a service:

1. ``solve_batch`` — many right-hand sides against one compiled synthesis in
   a single circuit sweep (a ``(B, 2**n)`` batched statevector);
2. ``CompiledSolverCache`` — repeated requests against the same matrix skip
   block-encoding / polynomial / phase synthesis entirely;
3. ``list_scenarios()`` + ``ScenarioRunner`` — *every* registered workload
   family (the PR-1 built-ins plus the :mod:`repro.problems` suite: 2-D/3-D
   Poisson, heat-equation chains, convection-diffusion, Helmholtz, graph
   Laplacians, prescribed-spectrum systems), discovered and run through one
   API;
4. ``Autotuner`` — cost-model-driven ε_l / backend selection per problem.

Run with:  python examples/engine_scenarios.py
"""

import tempfile
import time
from dataclasses import replace

import numpy as np

from repro import Autotuner, CompiledSolverCache, QSVTLinearSolver, ScenarioRunner
from repro.applications import random_workload
from repro.engine import build_scenario, list_scenarios
from repro.linalg import random_rhs
from repro.utils import as_generator


def main() -> None:
    # ---- 1. batched multi-RHS solve ---------------------------------- #
    workload = random_workload(dimension=16, kappa=10.0, rng=2025)
    solver = QSVTLinearSolver(workload.matrix, epsilon_l=1e-2, backend="circuit")
    gen = as_generator(7)
    rhs_batch = np.stack([random_rhs(16, rng=gen) for _ in range(8)])

    start = time.perf_counter()
    records = solver.solve_batch(rhs_batch)
    batched = time.perf_counter() - start
    start = time.perf_counter()
    looped = [solver.solve(rhs) for rhs in rhs_batch]
    loop_time = time.perf_counter() - start
    deviation = max(float(np.max(np.abs(a.x - b.x))) for a, b in zip(records, looped))
    print(f"solve_batch: 8 right-hand sides in {batched:.3f}s "
          f"(loop: {loop_time:.3f}s, {loop_time / batched:.1f}x slower), "
          f"max deviation {deviation:.1e}")

    # ---- 2. compiled-solver cache ------------------------------------ #
    cache = CompiledSolverCache()
    start = time.perf_counter()
    cache.solver(workload.matrix, epsilon_l=1e-2, backend="circuit")
    compile_time = time.perf_counter() - start
    start = time.perf_counter()
    cache.solver(workload.matrix, epsilon_l=1e-2, backend="circuit")
    hit_time = time.perf_counter() - start
    print(f"cache: compile {compile_time:.3f}s, hit {hit_time * 1e6:.0f}us, "
          f"stats {cache.stats()}")

    # ---- 3. discover and run every registered scenario family -------- #
    # list_scenarios() sees the PR-1 built-ins *and* the problem suite
    # (repro.problems registers its families on import); each family runs
    # end-to-end through the same runner with its default parameters.
    print("\nregistered scenarios:")
    for name, description in list_scenarios().items():
        print(f"  {name:22s} {description}")

    print("\nrunning every family (thread mode, ideal backend):")
    for name in list_scenarios():
        try:
            scenario = build_scenario(name, backend="ideal")
        except TypeError:
            # third-party builders need not accept a backend parameter
            scenario = build_scenario(name)
        runner = ScenarioRunner(mode="thread")   # fresh cache: per-family stats
        start = time.perf_counter()
        report = runner.run(scenario.jobs)
        elapsed = time.perf_counter() - start
        ok = sum(1 for result in report if result.ok and result.converged)
        cache = report.summary["cache"]
        print(f"  {name:22s} {ok}/{len(report)} converged in {elapsed:5.2f}s  "
              f"(cache hit rate {cache['hit_rate']:.2f})")

    # ---- 4. autotuner: cost-model eps_l per problem ------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        tuner = Autotuner(path=tmp + "/autotune.json", target_accuracy=1e-8)
        scenario = tuner.tune_scenario("heat-chain", num_steps=16)
        jobs = [replace(job, backend="ideal") for job in scenario.jobs]
        report = ScenarioRunner(mode="serial").run(jobs)
        profile = tuner.observe("heat-chain", report, kappa=jobs[0].kappa)
        print(f"\nautotuned heat-chain: eps_l={jobs[0].epsilon_l:.2e} "
              f"(kappa={jobs[0].kappa:.2f}), one synthesis for "
              f"{len(jobs)} steps (hit rate {profile.cache_hit_rate:.3f}), "
              f"next eps_l={profile.epsilon_l:.2e} after telemetry")


if __name__ == "__main__":
    main()
