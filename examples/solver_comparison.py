"""Compare the QSVT-based hybrid solver against HHL, VQLS and classical solvers.

The introduction of the paper motivates the QSVT choice against the two other
standard quantum linear-solver families.  This example runs them all on the
same small system and prints accuracy, success probabilities and (for the
refined variants) iteration counts — making concrete the qualitative statement
that iterative refinement turns *any* limited-accuracy inner solver (quantum
or low-precision classical) into a high-accuracy one.

Run with:  python examples/solver_comparison.py
"""

import numpy as np

from repro import MixedPrecisionRefinement, QSVTLinearSolver, mixed_precision_lu_refinement
from repro.applications import random_workload
from repro.baselines import ClassicalDirectSolver, HHLSolver, VQLSSolver, hhl_with_refinement
from repro.reporting import format_table


def main() -> None:
    workload = random_workload(8, kappa=6.0, rng=123)
    matrix, rhs, x_true = workload.matrix, workload.rhs, workload.solution
    rows = []

    def add(name, x, omega, iterations=0, note=""):
        rows.append({"solver": name,
                     "relative error": float(np.linalg.norm(x - x_true)
                                             / np.linalg.norm(x_true)),
                     "scaled residual": float(omega),
                     "iterations": iterations,
                     "note": note})

    qsvt = QSVTLinearSolver(matrix, epsilon_l=1e-2, backend="circuit")
    record = qsvt.solve(rhs)
    add("QSVT single solve", record.x, record.scaled_residual,
        note=f"degree {record.polynomial_degree}")
    refined = MixedPrecisionRefinement(qsvt, target_accuracy=1e-10).solve(rhs)
    add("QSVT + iterative refinement", refined.x, refined.scaled_residuals[-1],
        refined.iterations, note=f"{refined.total_block_encoding_calls} BE calls")

    hhl = HHLSolver(matrix, clock_qubits=9)
    record = hhl.solve(rhs)
    add("HHL single solve", record.x, record.scaled_residual,
        note=f"success prob {record.success_probability:.2f}")
    hhl_ir = hhl_with_refinement(matrix, rhs, clock_qubits=9, target_accuracy=1e-10)
    add("HHL + iterative refinement", hhl_ir.x, hhl_ir.scaled_residuals[-1],
        hhl_ir.iterations)

    vqls = VQLSSolver(matrix, layers=5, max_evaluations=6000, rng=1)
    record = vqls.solve(rhs)
    add("VQLS", record.x, record.scaled_residual, note="variational, COBYLA")

    lu_ir = mixed_precision_lu_refinement(matrix, rhs, low_precision="fp16",
                                          target_accuracy=1e-12)
    add("fp16 LU + refinement (Algorithm 1)", lu_ir.x, lu_ir.scaled_residuals[-1],
        lu_ir.iterations)
    record = ClassicalDirectSolver(matrix, precision="fp64").solve(rhs)
    add("classical LU @ fp64", record.x, record.scaled_residual)

    print(format_table(rows, title=f"solver comparison on {workload.name}"))


if __name__ == "__main__":
    main()
