"""Solve the 1-D Poisson equation with the hybrid CPU/QPU solver.

Reproduces the use case of Sec. III-C4 of the paper: the tridiagonal system of
Eq. (7) (``-u'' = f`` with Dirichlet boundary conditions) is solved with the
QSVT + iterative-refinement pipeline and compared against

* the ``O(N)`` classical Thomas algorithm (the reference the paper itself
  points out is hard to beat), and
* the analytic continuous solution, to show the discretisation error.

The script also prints the dedicated tridiagonal block-encoding (Fig. 2) and
the Table II-style cost breakdown for this problem size.

Run with:  python examples/poisson_1d.py
"""

import numpy as np

from repro import MixedPrecisionRefinement, QSVTLinearSolver
from repro.applications import PoissonProblem
from repro.blockencoding import TridiagonalBlockEncoding
from repro.core import poisson_complexity_table, poisson_tgate_estimate
from repro.reporting import format_table


def main() -> None:
    problem = PoissonProblem(num_points=16)
    matrix, rhs = problem.system()
    print(f"1-D Poisson, N = {problem.num_points} interior points "
          f"({problem.num_qubits} data qubits), h = {problem.step:.4f}")
    print(f"condition number: analytic {problem.condition_number():.1f}, "
          f"exact {problem.condition_number(exact=True):.1f}")

    # dedicated structured block-encoding of the tridiagonal matrix
    encoding = TridiagonalBlockEncoding(problem.num_qubits)
    print(f"\ntridiagonal block-encoding: {encoding.describe()}, "
          f"{encoding.num_terms} LCU terms")

    # hybrid solve
    solver = QSVTLinearSolver(matrix, epsilon_l=1e-3, backend="ideal")
    refinement = MixedPrecisionRefinement(solver, target_accuracy=1e-10)
    result = refinement.solve(rhs, x_true=problem.reference_solution())
    print(f"\nhybrid solve converged: {result.converged} in {result.iterations} iterations "
          f"(bound {result.iteration_bound:.0f}), final scaled residual "
          f"{result.scaled_residuals[-1]:.2e}")

    # compare against the classical references
    thomas = problem.reference_solution()
    continuous = problem.continuous_solution()
    hybrid_vs_thomas = np.max(np.abs(result.x - thomas))
    thomas_vs_continuous = problem.discretization_error()
    print(f"max |hybrid - Thomas|      : {hybrid_vs_thomas:.2e}")
    print(f"max |Thomas - continuous|  : {thomas_vs_continuous:.2e}  (discretisation error)")

    # Table II style complexity breakdown
    rows = poisson_complexity_table(problem.num_qubits, epsilon=1e-10, epsilon_l=1e-3)
    print("\n" + format_table(
        rows, columns=["task", "phase", "classical_formula", "quantum_formula",
                       "quantum_estimate"],
        title="complexity breakdown (Table II of the paper)"))
    tgates = poisson_tgate_estimate(problem.num_qubits, epsilon_l=1e-3,
                                    num_solves=result.iterations + 1)
    print(f"\nfault-tolerant estimate: {tgates['t_count_total']:.3e} T gates for the "
          f"whole refined solve ({tgates['polynomial_degree']:.0f} block-encoding calls "
          f"per solve)")


if __name__ == "__main__":
    main()
