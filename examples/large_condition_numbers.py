"""Refinement behaviour at large condition numbers (the Fig. 4 regime).

For κ of a few hundred the Eq.-(4) polynomial degree reaches tens of
thousands, so — like the paper, which switches to the phase-estimation
algorithm of Ref. [32] — this example uses the ideal-polynomial backend (the
same Chebyshev polynomial applied directly to the singular values).  It sweeps
κ from 10 to 500, reports the polynomial degree, the achieved inner accuracy,
the iteration count against the Theorem III.1 bound, and the per-iteration
contraction of the scaled residual.

Run with:  python examples/large_condition_numbers.py
"""

import numpy as np

from repro import MixedPrecisionRefinement, QSVTLinearSolver
from repro.applications import random_workload
from repro.reporting import format_table


def main() -> None:
    target = 1e-11
    rows = []
    for kappa in (10.0, 50.0, 100.0, 200.0, 500.0):
        workload = random_workload(16, kappa, rng=int(kappa))
        solver = QSVTLinearSolver(workload.matrix, epsilon_l=1e-3, backend="ideal")
        result = MixedPrecisionRefinement(solver, target_accuracy=target).solve(
            workload.rhs, x_true=workload.solution)
        residuals = result.scaled_residuals
        contraction = float(np.exp(np.mean(np.log(residuals[1:] / residuals[:-1]))))
        info = solver.describe()
        rows.append({
            "kappa": kappa,
            "polynomial degree": info["polynomial_degree"],
            "achieved eps_l": info["achieved_epsilon_l"],
            "eps_l * kappa": info["achieved_epsilon_l"] * kappa,
            "iterations": result.iterations,
            "Thm III.1 bound": result.iteration_bound,
            "mean contraction / iter": contraction,
            "final omega": residuals[-1],
            "forward error": result.forward_errors[-1],
        })
        print(f"kappa = {kappa:6.0f}: residual history "
              + " -> ".join(f"{value:.1e}" for value in residuals))
    print("\n" + format_table(rows, title=f"refinement at large condition numbers "
                                          f"(N = 16, target {target:g})"))


if __name__ == "__main__":
    main()
